"""Ablation: worker size (thread / warp / CTA) — design decision 3.

The paper evaluates with 512-thread CTA workers ("which achieve the
best performance for both BFS and PageRank").  Two effects to check:

* resident worker *count* scales inversely with worker width
  (occupancy arithmetic),
* per-queue-visit aggregation: wider workers mean fewer serialized
  queue atomics for the same task count (the Fig-1 contention model),
* end-to-end BFS remains correct for every worker shape.
"""

import numpy as np

from conftest import write_artifact
from repro.config import V100_32GB, daisy
from repro.gpu import WorkerConfig, resident_workers
from repro.graph import bfs_source, load
from repro.harness import get_partition
from repro.apps import AtosBFS, reference_bfs
from repro.metrics.tables import format_generic_table
from repro.queues import QueueContentionModel
from repro.runtime import AtosConfig, AtosExecutor

DATASET = "soc-livejournal1"


def _run_bfs(worker: WorkerConfig) -> float:
    graph = load(DATASET)
    app = AtosBFS(graph, get_partition(DATASET, 2), bfs_source(DATASET))
    config = AtosConfig(worker=worker, fetch_size=1)
    makespan, _ = AtosExecutor(daisy(2), app, config).run()
    assert np.array_equal(
        app.result(), reference_bfs(graph, bfs_source(DATASET))
    )
    return makespan / 1000


def test_ablation_worker_size(benchmark):
    def collect():
        out = {}
        for kind in ("thread", "warp", "cta"):
            worker = WorkerConfig(kind=kind, cta_threads=512)
            out[kind] = (
                resident_workers(V100_32GB, kind),
                _run_bfs(worker),
            )
        return out

    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [kind, count, f"{ms:.3f}"]
        for kind, (count, ms) in results.items()
    ]
    write_artifact(
        "ablation_worker_size.txt",
        format_generic_table(
            f"Ablation: worker size (BFS on {DATASET}, 2 GPUs)",
            ["worker", "resident workers", "bfs_ms"],
            rows,
        ),
    )
    # Occupancy arithmetic: 32x threads per warp, 16 warps per CTA.
    assert results["thread"][0] == 32 * results["warp"][0]
    assert results["warp"][0] == 16 * results["cta"][0]
    # All shapes correct (asserted inside _run_bfs) and in a sane band.
    times = [ms for _, ms in results.values()]
    assert max(times) < 10 * min(times)


def test_ablation_worker_queue_contention(benchmark):
    model = QueueContentionModel()
    n = 98304

    def collect():
        return {
            "warp": model.atos_push(n, "warp"),
            "cta": model.atos_push(n, "cta"),
        }

    costs = benchmark(collect)
    # Wider workers aggregate more requests per atomic: cheaper.
    assert costs["cta"] < costs["warp"]
