"""Table IV: PageRank runtimes on Daisy (NVLink), with speedups vs
Gunrock.

Shape criteria (paper Table IV):

* Both Atos configurations beat Gunrock on every dataset (paper's
  geomean: 2.59x discrete, 2.37x persistent; we require geomean > 1.5
  and per-cell advantage at 4 GPUs).
* Atos beats Groute on every dataset (paper: largest speedups vs
  Groute for PR).
* Async beats BSP mainly through work efficiency: Atos's relaxation
  count is below Gunrock's full-sweep edge count.
"""

import numpy as np

from conftest import write_artifact
from repro.graph import MESH_LIKE, SCALE_FREE


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def test_table4_pagerank_nvlink(benchmark, table4_grid):
    grid = benchmark.pedantic(
        lambda: table4_grid, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact(
        "table4_pagerank_nvlink.txt", grid.render(baseline="gunrock")
    )

    gunrock = grid.times["gunrock"]
    groute = grid.times["groute"]
    atos_d = grid.times["atos-standard-discrete"]
    atos_p = grid.times["atos-standard-persistent"]
    last = len(grid.gpu_counts) - 1

    for dataset in gunrock:
        best_atos = min(atos_d[dataset][last], atos_p[dataset][last])
        assert best_atos < gunrock[dataset][last], dataset
        if dataset in groute:
            assert best_atos < groute[dataset][last], dataset

    # Geomean speedup of the best Atos config over Gunrock across the
    # whole grid exceeds 1.5x.
    factors = []
    for dataset in gunrock:
        for i in range(len(grid.gpu_counts)):
            best = min(atos_d[dataset][i], atos_p[dataset][i])
            factors.append(gunrock[dataset][i] / best)
    assert _geomean(factors) > 1.5
