"""Shared fixtures for the paper-reproduction benchmarks.

Evaluation grids are session-scoped: Figure 5 replots Table II/IV's
runs, Figures 8/9 replot Table V's, so each grid is computed once per
benchmark session (the harness additionally memoizes every individual
run).

Every bench writes its rendered artifact (the paper-style table or
series) into ``results/`` next to this file, so a benchmark run leaves
the full set of regenerated tables on disk.

Set ``REPRO_QUICK=1`` to run reduced grids (fewer datasets / GPU
counts) — the same "quick mode" the paper's artifact scripts offer.
Set ``REPRO_JOBS=N`` to fan each grid out over N worker processes
(0 = one per CPU), and ``REPRO_RUN_TIMEOUT`` to give every pooled run
a deadline in seconds; results are identical to a serial run.  Both
sessions and repeated invocations are additionally served from the
persistent run cache (``REPRO_CACHE_DIR`` / ``REPRO_CACHE=0``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import (
    IB_GPUS,
    NVLINK_GPUS,
    resolve_jobs,
    table2_bfs_nvlink,
    table4_pagerank_nvlink,
    table5_ib,
)

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")

#: Worker processes per grid ($REPRO_JOBS; default serial) and the
#: optional per-run deadline in seconds ($REPRO_RUN_TIMEOUT).
JOBS = resolve_jobs(None)
RUN_TIMEOUT_S = (
    float(os.environ["REPRO_RUN_TIMEOUT"])
    if os.environ.get("REPRO_RUN_TIMEOUT")
    else None
)

QUICK_DATASETS = ["soc-livejournal1", "road-usa"]
QUICK_NVLINK_GPUS = (1, 4)
QUICK_IB_GPUS = (1, 4, 8)


def grid_datasets() -> list[str] | None:
    return QUICK_DATASETS if QUICK else None


def nvlink_gpus() -> tuple[int, ...]:
    return QUICK_NVLINK_GPUS if QUICK else NVLINK_GPUS


def ib_gpus() -> tuple[int, ...]:
    return QUICK_IB_GPUS if QUICK else IB_GPUS


def write_artifact(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def table2_grid():
    return table2_bfs_nvlink(
        grid_datasets(), nvlink_gpus(), jobs=JOBS, timeout_s=RUN_TIMEOUT_S
    )


@pytest.fixture(scope="session")
def table4_grid():
    return table4_pagerank_nvlink(
        grid_datasets(), nvlink_gpus(), jobs=JOBS, timeout_s=RUN_TIMEOUT_S
    )


@pytest.fixture(scope="session")
def table5_bfs_grid():
    return table5_ib(
        "bfs", grid_datasets(), ib_gpus(), jobs=JOBS, timeout_s=RUN_TIMEOUT_S
    )


@pytest.fixture(scope="session")
def table5_pr_grid():
    return table5_ib(
        "pagerank",
        grid_datasets(),
        ib_gpus(),
        jobs=JOBS,
        timeout_s=RUN_TIMEOUT_S,
    )
