"""Figure 5: strong scaling of BFS and PageRank on NVLink.

Replots Tables II/IV as self-relative speedup curves (each framework
vs its own 1-GPU time).  Asserted shapes:

* scale-free datasets strong-scale better than mesh-like ones for
  Atos (paper: "all frameworks scale better on bandwidth-limited
  scale-free graphs"),
* Gunrock's BFS *slows down* with more GPUs on mesh-like datasets
  (Table II shows 604 -> 1009 ms on road_usa),
* Atos PageRank scales on every dataset,
* PageRank scales better than BFS for Atos (more parallelism).
"""

import numpy as np

from conftest import write_artifact
from repro.harness import figure5_scaling


def _self_speedup(series):
    return series[0] / series[-1]


def test_fig5_strong_scaling(benchmark, table2_grid, table4_grid):
    def render():
        return (
            figure5_scaling(
                table2_grid,
                [d for d in table2_grid.times["gunrock"]],
            ),
            figure5_scaling(
                table4_grid,
                [d for d in table4_grid.times["gunrock"]],
            ),
        )

    bfs_text, pr_text = benchmark.pedantic(
        render, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact(
        "fig5_strong_scaling_nvlink.txt",
        "== BFS ==\n" + bfs_text + "\n\n== PageRank ==\n" + pr_text,
    )

    gunrock_bfs = table2_grid.times["gunrock"]
    atos_bfs = table2_grid.times["atos-standard-persistent"]
    atos_pr = table4_grid.times["atos-standard-persistent"]

    mesh = [d for d in ("road-usa", "osm-eur") if d in gunrock_bfs]
    scale_free = [
        d for d in ("soc-livejournal1", "twitter50") if d in gunrock_bfs
    ]

    # Gunrock BFS anti-scales on mesh (more GPUs = slower).
    for dataset in mesh:
        assert _self_speedup(gunrock_bfs[dataset]) < 1.0, dataset

    # Atos PageRank speeds up with GPUs everywhere.
    for dataset in atos_pr:
        assert _self_speedup(atos_pr[dataset]) > 1.2, dataset

    # Atos BFS scales better on scale-free than on mesh.
    if mesh and scale_free:
        best_sf = max(_self_speedup(atos_bfs[d]) for d in scale_free)
        best_mesh = max(_self_speedup(atos_bfs[d]) for d in mesh)
        assert best_sf > best_mesh

    # For Atos, PageRank strong-scales at least as well as BFS
    # (geomean over shared datasets).
    shared = [d for d in atos_pr if d in atos_bfs]
    pr_gm = np.exp(
        np.mean([np.log(_self_speedup(atos_pr[d])) for d in shared])
    )
    bfs_gm = np.exp(
        np.mean([np.log(_self_speedup(atos_bfs[d])) for d in shared])
    )
    assert pr_gm > bfs_gm * 0.95
