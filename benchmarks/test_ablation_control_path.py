"""Ablation: GPU-resident vs CPU-mediated communication control path
(design decision: "do not involve the CPU in the communication control
path").

Runs the same asynchronous BFS with the control path on the GPU
(Atos) and through the host (what Groute/Gunrock/Galois do), isolating
the single knob — every other parameter identical.
"""

import numpy as np

from conftest import write_artifact
from repro.config import daisy
from repro.graph import bfs_source, load
from repro.harness import get_partition
from repro.apps import AtosBFS, reference_bfs
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor


def _run(dataset: str, control_path: str, n_gpus: int = 4) -> float:
    graph = load(dataset)
    partition = get_partition(dataset, n_gpus)
    app = AtosBFS(graph, partition, bfs_source(dataset))
    config = AtosConfig(control_path=control_path, fetch_size=1)
    makespan, _ = AtosExecutor(daisy(n_gpus), app, config).run()
    assert np.array_equal(
        app.result(), reference_bfs(graph, bfs_source(dataset))
    )
    return makespan / 1000


def _collect():
    rows = []
    for dataset in ("road-usa", "soc-livejournal1"):
        gpu = _run(dataset, "gpu")
        cpu = _run(dataset, "cpu")
        rows.append([dataset, f"{gpu:.3f}", f"{cpu:.3f}",
                     f"{cpu / gpu:.2f}"])
    return rows


def test_ablation_control_path(benchmark):
    rows = benchmark.pedantic(
        _collect, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact(
        "ablation_control_path.txt",
        format_generic_table(
            "Ablation: async BFS (ms) by control path location, 4 GPUs",
            ["dataset", "gpu-path", "cpu-path", "cpu/gpu"],
            rows,
        ),
    )
    for row in rows:
        # The CPU hop always costs.  (At paper scale it costs *most*
        # on latency-bound mesh graphs; at 1/200 scale the mesh's
        # speculation redundancy partly masks the latency term, so we
        # assert only the sign here — see EXPERIMENTS.md.)
        assert float(row[3]) > 1.0, row[0]
