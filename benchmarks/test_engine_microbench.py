"""Engine-queue microbenchmarks (asimpy-style per-primitive cells).

Covers the pluggable event queues the way Figure 1 covers the message
queues: each primitive (schedule, pop-drain, cohort-fire, cancel) is a
pytest-benchmark cell for both variants, and the full
``BENCH_engine``-shaped document is regenerated, rendered into
``results/``, and schema-validated — the same artifact the
``python -m repro engine-bench`` command commits.

The assertions pin the engine story, not exact timings: the calendar
queue must beat the heap on the tie-heavy cohort-fire cell (the whole
point of the variant) and on cancel (eager removal vs O(n) tombstone),
while the digest-equality guarantee is enforced inside the e2e cells
themselves.
"""

import json

from conftest import write_artifact
from repro.harness.engine_bench import (
    HEADLINE_CELL,
    render_engine_bench,
    run_engine_bench,
    validate_engine_bench,
)
from repro.sim.equeue import CalendarQueue, HeapQueue

import pytest

_VARIANTS = {"heap": HeapQueue, "calendar": CalendarQueue}


def _cohort_entries(n_times: int = 128, cohort: int = 32) -> list:
    return [
        (float(t), 1, t * cohort + i, None)
        for t in range(n_times)
        for i in range(cohort)
    ]


def _mixed_entries(n: int = 4096) -> list:
    # Deterministic mixed stream: clustered cadences with stragglers.
    return [
        (float((seq * 7919) % 97) * 2.5 + (seq % 3) * 0.125, seq % 2,
         seq, None)
        for seq in range(n)
    ]


# ------------------------------------------------- per-primitive cells
@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_bench_schedule(benchmark, variant):
    entries = _mixed_entries()
    queue_cls = _VARIANTS[variant]

    def workload():
        queue = queue_cls()
        for e in entries:
            queue.push(e)
        return len(queue)

    assert benchmark(workload) == len(entries)


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_bench_pop_drain(benchmark, variant):
    entries = _mixed_entries()
    queue_cls = _VARIANTS[variant]

    def workload():
        queue = queue_cls()
        for e in entries:
            queue.push(e)
        popped = 0
        while queue:
            queue.pop()
            popped += 1
        return popped

    assert benchmark(workload) == len(entries)


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_bench_cohort_fire(benchmark, variant):
    entries = _cohort_entries()
    queue_cls = _VARIANTS[variant]

    def workload():
        queue = queue_cls()
        for e in entries:
            queue.push(e)
        fired = 0
        while queue:
            fired += len(queue.pop_cohort())
        return fired

    assert benchmark(workload) == len(entries)


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_bench_cancel(benchmark, variant):
    entries = _mixed_entries(2048)
    victims = entries[::2]
    queue_cls = _VARIANTS[variant]

    def workload():
        queue = queue_cls()
        for e in entries:
            queue.push(e)
        cancelled = sum(1 for v in victims if queue.cancel(v))
        return cancelled, len(queue)

    assert benchmark(workload) == (len(victims),
                                   len(entries) - len(victims))


# ---------------------------------------------------- the full document
def test_engine_bench_document(benchmark):
    doc = benchmark.pedantic(
        run_engine_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    assert validate_engine_bench(doc) >= 5
    write_artifact("engine_microbench.txt", render_engine_bench(doc))
    write_artifact(
        "engine_microbench.json", json.dumps(doc, indent=2)
    )
    cells = doc["cells"]
    # The variant's reason to exist: batch cohort dispatch and eager
    # cancel must beat the heap outright.  Since pushes went
    # append-only (sort-on-first-read), the shuffled fill's deferred
    # sorts land in the drain this cell times, so its margin is thin —
    # 1.05x here (loaded CI runners), ~1.5x in practice; cancel stays
    # an order of magnitude.
    assert doc["headline"] == HEADLINE_CELL
    assert cells[HEADLINE_CELL]["speedup"] >= 1.05
    assert cells["cancel"]["speedup"] >= 1.3
    # The opcode counts must agree with the wall-clock story: the
    # cohort dispatcher executes fewer interpreter instructions per
    # fired entry than the heap's per-entry sift loop.
    assert (
        cells[HEADLINE_CELL]["calendar_opcodes_per_entry"]
        < cells[HEADLINE_CELL]["heap_opcodes_per_entry"]
    )
    # Digest equality is asserted inside every e2e cell; reaching here
    # means heap and calendar simulated bit-identical runs.
    e2e = [name for name in cells if name.startswith("e2e-")]
    assert e2e and all("digest" in cells[name] for name in e2e)


def test_opcode_counts_are_deterministic():
    from repro.harness.engine_bench import _bench_cohort_fire

    first = _bench_cohort_fire(True, seed=0)
    second = _bench_cohort_fire(True, seed=0)
    for key in ("heap_opcodes_per_entry", "calendar_opcodes_per_entry"):
        assert first[key] == second[key] > 0
