"""Figure 3: the communication aggregator workflow.

Figure 3 is a schematic (steps 1-5 of the aggregation path); the
reproducible content is behavioural: workers return immediately after
buffering (step 2), the aggregator flushes on BATCH_SIZE (step 4) or
on the WAIT_TIME timeout (step 5), and aggregation turns many small
application messages into few large wire messages.
"""

import numpy as np

from conftest import write_artifact
from repro.config import summit_ib
from repro.interconnect import NetworkFabric
from repro.metrics.tables import format_generic_table
from repro.runtime import Aggregator
from repro.sim import Environment


def _aggregation_run(n_updates: int, update_bytes: int, batch_size: int,
                     wait_time: int):
    env = Environment()
    fabric = NetworkFabric(env, summit_ib(2))
    agg = Aggregator(
        0,
        2,
        lambda dst, payloads, n_bytes: fabric.send(
            0, dst, n_bytes, payloads, lambda m: None
        ),
        batch_size=batch_size,
        wait_time=wait_time,
    )
    for i in range(n_updates):
        agg.add(1, i, update_bytes)
        if i % 64 == 63:
            agg.tick()
    agg.flush_all()
    env.run()
    return fabric.stats(), agg


def test_fig3_aggregation_reduces_message_count(benchmark):
    stats, agg = benchmark(
        _aggregation_run, 4096, 8, 1 << 10, 1 << 20
    )
    # 4096 application updates -> ~32 wire messages of ~1 KiB.
    assert stats["messages"] <= 4096 / 16
    assert agg.flushes_on_size >= 1
    write_artifact(
        "fig3_aggregator_behavior.txt",
        format_generic_table(
            "Figure 3: aggregator behaviour (4096 x 8 B updates, "
            "1 KiB batches)",
            ["metric", "value"],
            [
                ["application updates", 4096],
                ["wire messages", int(stats["messages"])],
                ["flushes on batch size", agg.flushes_on_size],
                ["flushes on timeout", agg.flushes_on_timeout],
            ],
        ),
    )


def test_fig3_timeout_path_fires_for_stragglers(benchmark):
    _, agg = benchmark.pedantic(
        _aggregation_run, args=(128, 8, 1 << 20), kwargs={"wait_time": 1},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # Far below batch size: only the timeout (or final drain) sends.
    assert agg.flushes_on_size == 0
    assert agg.flushes_on_timeout >= 1


def test_fig3_workers_never_block(benchmark):
    # add() must complete without advancing simulated time: the worker
    # "returns immediately" (step 2).
    env = Environment()
    fabric = NetworkFabric(env, summit_ib(2))
    agg = Aggregator(
        0, 2,
        lambda dst, payloads, n_bytes: fabric.send(
            0, dst, n_bytes, payloads, lambda m: None),
        batch_size=1 << 20, wait_time=64,
    )
    def add_many():
        for i in range(1000):
            agg.add(1, i, 8)
        return env.now

    assert benchmark(add_many) == 0.0
