"""Figure 9: strong scaling of PageRank on the InfiniBand system.

Replots Table V's PageRank runs as self-relative speedups.  Asserted
(paper: "on all datasets, Atos becomes faster with more GPUs whereas
Galois becomes slower"): Atos's 8-GPU time beats its 1-GPU time on
every dataset; Galois's does not; and Atos's scaling curve dominates.
"""

from conftest import write_artifact
from repro.harness import figure5_scaling


def test_fig9_pr_ib_scaling(benchmark, table5_pr_grid):
    text = benchmark.pedantic(
        lambda: figure5_scaling(
            table5_pr_grid, list(table5_pr_grid.times["galois"])
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    write_artifact("fig9_pr_ib_scaling.txt", text)

    galois = table5_pr_grid.times["galois"]
    atos = table5_pr_grid.times["atos"]
    for dataset in galois:
        atos_series = atos[dataset]
        galois_series = galois[dataset]
        # Atos becomes faster with more GPUs on every dataset.
        assert atos_series[-1] < atos_series[0], dataset
        # Atos's strong scaling dominates Galois's everywhere.
        assert (atos_series[0] / atos_series[-1]) > (
            galois_series[0] / galois_series[-1]
        ), dataset
    # Galois anti-scales on the mesh datasets (paper Table V: road_usa
    # 133 -> 900 ms, osm-eur 1010 -> 2029 ms going 1 -> 8 GPUs); its
    # scale-free PR may improve modestly, as in the paper.
    for dataset in ("road-usa", "osm-eur"):
        if dataset in galois:
            assert galois[dataset][-1] > galois[dataset][0], dataset
