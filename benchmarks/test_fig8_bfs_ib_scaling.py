"""Figure 8: strong scaling of BFS on the 8-node InfiniBand system.

Replots Table V's BFS runs as self-relative speedups.  Asserted:
Atos's scaling curve dominates Galois's on every dataset, and Galois
cannot strong-scale BFS at all (its 8-GPU self-speedup stays below 1).
"""

from conftest import write_artifact
from repro.harness import figure5_scaling


def test_fig8_bfs_ib_scaling(benchmark, table5_bfs_grid):
    text = benchmark.pedantic(
        lambda: figure5_scaling(
            table5_bfs_grid, list(table5_bfs_grid.times["galois"])
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    write_artifact("fig8_bfs_ib_scaling.txt", text)

    galois = table5_bfs_grid.times["galois"]
    atos = table5_bfs_grid.times["atos"]
    for dataset in galois:
        atos_speedup = atos[dataset][0] / atos[dataset][-1]
        galois_speedup = galois[dataset][0] / galois[dataset][-1]
        assert atos_speedup > galois_speedup, dataset
        # Paper Fig 8: Galois's BFS does not strong-scale on IB.
        assert galois_speedup < 1.0, dataset
