"""Extension experiment: speculative graph coloring.

The Atos single-GPU paper (the paper's reference [16]) evaluates
speculative greedy coloring; this bench runs its distributed analogue:
vertices color themselves against possibly-stale neighbor state,
conflicts re-queue the higher-id endpoint, and boundary colors
propagate via one-sided mirror announcements.

Measured: conflict rate and color quality vs the serial greedy
baseline, on one scale-free and one mesh dataset, 4 GPUs.  Proper
colorings are asserted (the hard invariant); quality stays within 2x
of greedy.
"""

from conftest import write_artifact
from repro.config import daisy
from repro.graph import load
from repro.harness import get_partition
from repro.apps import AtosColoring, greedy_coloring, is_proper_coloring
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

N_GPUS = 4


def _run(dataset: str):
    graph = load(dataset)
    partition = get_partition(dataset, N_GPUS)
    app = AtosColoring(graph, partition)
    makespan, counters = AtosExecutor(
        daisy(N_GPUS), app, AtosConfig(fetch_size=1)
    ).run()
    colors = app.result()
    assert is_proper_coloring(graph, colors)
    greedy = greedy_coloring(graph)
    return {
        "time_ms": makespan / 1000,
        "colors": int(colors.max() + 1),
        "greedy_colors": int(greedy.max() + 1),
        "attempts": int(counters["color_attempts"]),
        "conflicts": int(counters["conflicts"]),
        "n": graph.n_vertices,
    }


def test_extension_coloring(benchmark):
    def collect():
        return {
            d: _run(d)
            for d in ("hollywood-2009", "road-usa")
        }

    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [
            dataset,
            f"{m['time_ms']:.3f}",
            m["colors"],
            m["greedy_colors"],
            m["attempts"],
            m["conflicts"],
            f"{m['conflicts'] / m['n']:.2f}",
        ]
        for dataset, m in results.items()
    ]
    write_artifact(
        "extension_coloring.txt",
        format_generic_table(
            f"Extension: speculative coloring, {N_GPUS} GPUs",
            ["dataset", "time_ms", "colors", "greedy", "attempts",
             "conflicts", "conflicts/vertex"],
            rows,
        ),
    )
    for dataset, m in results.items():
        # Proper coloring asserted inside _run; quality within 2x.
        assert m["colors"] <= 2 * m["greedy_colors"], dataset
        # Speculation is real: conflicts occurred and were resolved.
        assert m["conflicts"] > 0, dataset
