"""Ablation: communication aggregator parameters on InfiniBand.

Sweeps WAIT_TIME for latency-bound BFS and bandwidth-bound PageRank
and checks the paper's conclusion: "latency-limited applications
benefit from propagating messages as quickly as possible ... whereas
bandwidth-limited applications benefit from sending larger messages".
Also verifies the aggregator beats per-update direct sends on IB for
PageRank (the reason it exists).
"""

import numpy as np

from conftest import write_artifact
from repro.config import summit_ib
from repro.graph import bfs_source, load
from repro.harness import get_partition
from repro.apps import AtosBFS, AtosPageRank
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

DATASET = "soc-livejournal1"
N_GPUS = 4


def _bfs(wait_time: int, use_aggregator: bool = True) -> float:
    graph = load(DATASET)
    app = AtosBFS(graph, get_partition(DATASET, N_GPUS), bfs_source(DATASET))
    config = AtosConfig(
        fetch_size=1, wait_time=wait_time, use_aggregator=use_aggregator
    )
    makespan, _ = AtosExecutor(summit_ib(N_GPUS), app, config).run()
    return makespan / 1000


def _pr(wait_time: int, use_aggregator: bool = True) -> tuple[float, float]:
    graph = load(DATASET)
    app = AtosPageRank(
        graph, get_partition(DATASET, N_GPUS), epsilon=1e-4
    )
    config = AtosConfig(
        fetch_size=8, wait_time=wait_time, use_aggregator=use_aggregator
    )
    makespan, counters = AtosExecutor(summit_ib(N_GPUS), app, config).run()
    return makespan / 1000, counters["fabric_messages"]


def test_ablation_aggregator_wait_time(benchmark):
    def collect():
        bfs = {wt: _bfs(wt) for wt in (1, 4, 32, 128)}
        pr = {wt: _pr(wt) for wt in (1, 4, 32, 128)}
        return bfs, pr

    bfs, pr = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [wt, f"{bfs[wt]:.3f}", f"{pr[wt][0]:.3f}", int(pr[wt][1])]
        for wt in sorted(bfs)
    ]
    write_artifact(
        "ablation_aggregator.txt",
        format_generic_table(
            f"Ablation: WAIT_TIME on IB ({DATASET}, {N_GPUS} GPUs)",
            ["wait_time", "bfs_ms", "pr_ms", "pr_wire_msgs"],
            rows,
        ),
    )
    # Latency-bound BFS: eager (small WAIT_TIME) within 10% of best,
    # and very lazy flushing clearly hurts.
    best_bfs = min(bfs.values())
    assert bfs[1] <= best_bfs * 1.25
    assert bfs[128] > bfs[1]
    # Batching reduces wire messages monotonically for PageRank.
    msgs = [pr[wt][1] for wt in sorted(pr)]
    assert msgs == sorted(msgs, reverse=True)


def test_ablation_aggregator_vs_direct_sends(benchmark):
    def collect():
        with_agg = _pr(32, use_aggregator=True)
        without = _pr(32, use_aggregator=False)
        return with_agg, without

    (agg_ms, agg_msgs), (direct_ms, direct_msgs) = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    # Aggregation sends far fewer, larger messages.
    assert agg_msgs < direct_msgs / 2
