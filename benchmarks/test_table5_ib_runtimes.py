"""Table V: BFS and PageRank on Summit (InfiniBand), Galois vs Atos,
1-8 GPUs (one GPU per node; all traffic crosses IB).

Shape criteria (paper Table V):

* Atos beats Galois on every dataset at every multi-GPU count for
  both applications (the paper's only exception is twitter50 BFS at
  1-2 GPUs, where Galois's direction-optimized single-GPU BFS wins —
  we assert exactly that nuance),
* mesh-like BFS shows the largest factors (paper: 268x geomean; we
  require >= 10x at 8 GPUs),
* Galois BFS gets *slower* as GPUs are added on mesh graphs.
"""

import numpy as np

from conftest import write_artifact
from repro.graph import MESH_LIKE, SCALE_FREE


def test_table5_bfs_ib(benchmark, table5_bfs_grid):
    grid = benchmark.pedantic(
        lambda: table5_bfs_grid, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact("table5_bfs_ib.txt", grid.render(baseline="galois"))
    galois = grid.times["galois"]
    atos = grid.times["atos"]
    counts = grid.gpu_counts
    for dataset in galois:
        for i, n in enumerate(counts):
            if n < 3 and dataset == "twitter50":
                continue  # Galois's DO-BFS may win at low GPU counts
            if n == 1:
                continue  # single-GPU: no communication advantage
            assert atos[dataset][i] < galois[dataset][i], (dataset, n)
    mesh = [d for d in MESH_LIKE if d in galois]
    for dataset in mesh:
        assert galois[dataset][-1] / atos[dataset][-1] > 10, dataset
        # Galois anti-scales on mesh BFS.
        assert galois[dataset][-1] > galois[dataset][0], dataset


def test_table5_pagerank_ib(benchmark, table5_pr_grid):
    grid = benchmark.pedantic(
        lambda: table5_pr_grid, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact("table5_pr_ib.txt", grid.render(baseline="galois"))
    galois = grid.times["galois"]
    atos = grid.times["atos"]
    counts = grid.gpu_counts
    for dataset in galois:
        for i, n in enumerate(counts):
            if n == 1:
                continue
            assert atos[dataset][i] < galois[dataset][i], (dataset, n)
    # Multi-GPU geomean speedup is substantial (paper: up to 80x).
    factors = [
        galois[d][i] / atos[d][i]
        for d in galois
        for i, n in enumerate(counts)
        if n > 1
    ]
    assert float(np.exp(np.mean(np.log(factors)))) > 3.0
