"""Paper-vs-measured shape report across all runtime tables.

Aggregates the session's Table II / IV / V grids against the paper's
transcribed numbers (repro.harness.paper_data) and asserts global
shape quality: most framework-pair speedup *directions* match the
paper, and the median factor disagreement stays within one order of
magnitude.  The rendered report feeds EXPERIMENTS.md.
"""

import numpy as np

from conftest import write_artifact
from repro.harness import (
    PAPER_TABLE2_BFS_NVLINK,
    PAPER_TABLE4_PR_NVLINK,
    PAPER_TABLE5_BFS_IB,
    PAPER_TABLE5_PR_IB,
    compare_grid,
)


def test_shape_report(
    benchmark, table2_grid, table4_grid, table5_bfs_grid, table5_pr_grid
):
    def build():
        return [
            compare_grid(
                "Table II (BFS, NVLink)",
                table2_grid,
                PAPER_TABLE2_BFS_NVLINK,
                (1, 2, 3, 4),
            ),
            compare_grid(
                "Table IV (PageRank, NVLink)",
                table4_grid,
                PAPER_TABLE4_PR_NVLINK,
                (1, 2, 3, 4),
            ),
            compare_grid(
                "Table V (BFS, InfiniBand)",
                table5_bfs_grid,
                PAPER_TABLE5_BFS_IB,
                (1, 2, 3, 4, 5, 6, 7, 8),
            ),
            compare_grid(
                "Table V (PageRank, InfiniBand)",
                table5_pr_grid,
                PAPER_TABLE5_PR_IB,
                (1, 2, 3, 4, 5, 6, 7, 8),
            ),
        ]

    reports = benchmark.pedantic(
        build, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact(
        "paper_vs_measured_shapes.txt",
        "\n\n".join(r.render() for r in reports),
    )
    total_pairs = sum(r.direction_pairs for r in reports)
    total_matches = sum(r.direction_matches for r in reports)
    assert total_pairs > 0
    # Across every compared cell pair, >= 70% of "who is faster"
    # relations match the paper.
    assert total_matches / total_pairs >= 0.70
    # Median factor disagreement within one order of magnitude.
    all_errors = np.abs(
        np.concatenate([r.log_factor_errors for r in reports])
    )
    assert float(np.median(all_errors)) < 1.0
