"""Figure 6: the two NVLink topologies (Daisy vs one Summit node).

Figure 6 is a topology schematic; the reproducible content is the
connection structure itself plus the property the paper reads off it:
"Summit's topology requires more than half of all GPU-to-GPU
communications to pass between sockets and thus incurs a latency
penalty".
"""

import numpy as np

from conftest import write_artifact
from repro.config import daisy, summit_node
from repro.interconnect import Topology


def test_fig6_topologies(benchmark):
    def build():
        return Topology(daisy(4)), Topology(summit_node(6))

    daisy_topo, summit_topo = benchmark(build)
    write_artifact(
        "fig6_topologies.txt",
        "Daisy (all-to-all NVLink):\n"
        + daisy_topo.describe()
        + "\n\nSummit node (2 sockets x 3 GPUs):\n"
        + summit_topo.describe(),
    )

    # Daisy: uniform latency, the appendix's NV1/NV2 bandwidth matrix.
    lat = daisy_topo.latency_matrix()
    off = lat[~np.eye(4, dtype=bool)]
    assert len(np.unique(off)) == 1
    bw = daisy_topo.bandwidth_matrix()
    assert bw[0, 3] == bw[1, 2] == 50000.0
    assert bw[0, 1] == bw[0, 2] == 25000.0

    # Summit node: >half of ordered GPU pairs cross the socket.
    n = 6
    cross = sum(
        1
        for i in range(n)
        for j in range(n)
        if i != j and (i < 3) != (j < 3)
    )
    total = n * (n - 1)
    assert cross / total > 0.5
    # ... and those pairs pay higher latency / lower bandwidth.
    assert summit_topo.latency(0, 3) > summit_topo.latency(0, 1)
    assert summit_topo.bandwidth(0, 3) < summit_topo.bandwidth(0, 1)
    # Mean pair latency is therefore worse than Daisy's.
    assert (
        summit_topo.mean_pair_latency() > 1.5 * daisy_topo.mean_pair_latency()
    )
