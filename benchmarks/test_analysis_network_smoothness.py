"""Analysis: network-usage smoothness — Atos vs BSP traffic patterns.

The paper's first stated benefit: Atos's "communications are spread
out, smoothing the spikes in network communication that typically
occur when communication is isolated in a single phase".  This bench
measures it directly: the communication timelines of Atos (every
one-sided send, timestamped by the DES) and Gunrock (one bulk burst
per BSP phase) are binned at sub-phase resolution and compared by
coefficient of variation and peak-to-mean ratio.
"""

import numpy as np

from conftest import write_artifact
from repro.config import daisy
from repro.graph import bfs_source, load
from repro.harness import get_partition
from repro.frameworks import AtosDriver, GunrockLikeDriver
from repro.metrics import burstiness, peak_to_mean
from repro.metrics.tables import format_generic_table

DATASET = "soc-livejournal1"
N_GPUS = 4
#: Bin width (us): well below one BSP phase (~100-200 us) so phase
#: bursts are not averaged away.
BIN_US = 25.0


def _measure():
    graph = load(DATASET)
    partition = get_partition(DATASET, N_GPUS)
    machine = daisy(N_GPUS)
    out = {}
    for driver in (AtosDriver(), GunrockLikeDriver()):
        result = driver.run_pagerank(
            graph, partition, machine, dataset=DATASET
        )
        t_end = result.time_ms * 1000.0
        n_bins = max(10, int(t_end / BIN_US))
        out[result.framework] = {
            "time_ms": result.time_ms,
            "events": len(result.timeline),
            "burstiness": burstiness(result.timeline, t_end, n_bins),
            "peak_to_mean": peak_to_mean(result.timeline, t_end, n_bins),
        }
    return out


def test_network_smoothness(benchmark):
    measured = benchmark.pedantic(
        _measure, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [
            name,
            f"{m['time_ms']:.2f}",
            m["events"],
            f"{m['burstiness']:.2f}",
            f"{m['peak_to_mean']:.1f}",
        ]
        for name, m in measured.items()
    ]
    write_artifact(
        "analysis_network_smoothness.txt",
        format_generic_table(
            f"Network smoothness: PageRank on {DATASET}, {N_GPUS} GPUs "
            f"({BIN_US:.0f} us bins)",
            ["engine", "time_ms", "send events", "burstiness",
             "peak/mean"],
            rows,
        ),
    )
    atos = measured["atos-standard-persistent"]
    gunrock = measured["gunrock"]
    # Atos sends orders of magnitude more, smaller messages...
    assert atos["events"] > 20 * gunrock["events"]
    # ...and its traffic is measurably smoother at sub-phase resolution.
    assert atos["burstiness"] < 0.75 * gunrock["burstiness"]
    assert atos["peak_to_mean"] < gunrock["peak_to_mean"]
