"""Figure 2: bandwidth efficiency vs requested bytes (PCIe gen3, NVLink).

Regenerates the efficiency curves over the paper's 1-128 byte sweep
and asserts the claims the paper draws from the figure:

* a 32-byte NVLink payload exceeds 50% efficiency,
* NVLink sits above PCIe gen3 throughout the plotted 25-125 B range,
* the NVLink curve is a 32-byte-sector staircase capped at 4 sectors.
"""

import numpy as np

from conftest import write_artifact
from repro.interconnect import default_nvlink, default_pcie
from repro.interconnect.nvlink import SECTOR_BYTES
from repro.metrics.tables import format_generic_table


def _curves():
    nvlink, pcie = default_nvlink(), default_pcie()
    sizes = np.arange(1, 129)
    return (
        sizes,
        np.array([nvlink.efficiency(int(s)) for s in sizes]),
        np.array([pcie.efficiency(int(s)) for s in sizes]),
    )


def test_fig2_efficiency_curves(benchmark):
    sizes, nvlink_eff, pcie_eff = benchmark(_curves)
    rows = [
        [int(s), f"{n:.3f}", f"{p:.3f}"]
        for s, n, p in zip(sizes[::8], nvlink_eff[::8], pcie_eff[::8])
    ]
    write_artifact(
        "fig2_bandwidth_efficiency.txt",
        format_generic_table(
            "Figure 2: bandwidth efficiency vs requested bytes",
            ["bytes", "NVLink", "PCIe gen3"],
            rows,
        ),
    )
    # Paper claim: 32 B payload > 50% efficient on NVLink.
    assert nvlink_eff[31] > 0.5
    # NVLink above PCIe across the plotted range (25-125 B).
    plotted = slice(24, 125)
    assert np.all(nvlink_eff[plotted] > pcie_eff[plotted])
    # Sector staircase: efficiency locally peaks at sector multiples.
    for k in (1, 2, 3, 4):
        idx = k * SECTOR_BYTES - 1
        assert nvlink_eff[idx] == max(nvlink_eff[max(0, idx - 8) : idx + 1])
    # Efficiency never reaches 1 (framing always costs something).
    assert nvlink_eff.max() < 1.0 and pcie_eff.max() < 1.0
