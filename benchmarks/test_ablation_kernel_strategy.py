"""Ablation: persistent vs discrete kernels (design decision 1).

The paper's claim: persistent kernels win when kernel-launch overhead
dominates (mesh-like BFS: thousands of tiny frontiers); discrete
kernels are competitive when rounds are few and fat (scale-free).
Sweeps both strategies on one mesh and one scale-free dataset.
"""

from conftest import write_artifact
from repro.harness import run
from repro.metrics.tables import format_generic_table


def _collect():
    rows = []
    for dataset in ("road-usa", "soc-livejournal1"):
        persistent = run(
            "atos-standard-persistent", "bfs", dataset, "daisy", 4
        ).time_ms
        discrete = run(
            "atos-standard-discrete", "bfs", dataset, "daisy", 4
        ).time_ms
        rows.append(
            [dataset, f"{persistent:.3f}", f"{discrete:.3f}",
             f"{discrete / persistent:.2f}"]
        )
    return rows


def test_ablation_kernel_strategy(benchmark):
    rows = benchmark.pedantic(
        _collect, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact(
        "ablation_kernel_strategy.txt",
        format_generic_table(
            "Ablation: BFS runtime (ms) by kernel strategy, 4 GPUs",
            ["dataset", "persistent", "discrete", "discrete/persistent"],
            rows,
        ),
    )
    by_dataset = {r[0]: r for r in rows}
    # Mesh: persistent wins big (launch overhead x diameter).
    assert float(by_dataset["road-usa"][3]) > 2.0
    # Scale-free: the gap shrinks by an order of magnitude.
    assert (
        float(by_dataset["soc-livejournal1"][3])
        < float(by_dataset["road-usa"][3]) / 2
    )
