"""Tests for communication-timeline analyses."""

import numpy as np
import pytest

from repro.metrics import burstiness, byte_histogram, peak_to_mean


def test_histogram_bins_bytes():
    timeline = [(0.5, 10.0), (1.5, 20.0), (1.6, 5.0)]
    edges, per_bin = byte_histogram(timeline, t_end=2.0, n_bins=2)
    assert len(edges) == 3
    assert list(per_bin) == [10.0, 25.0]


def test_histogram_empty_timeline():
    edges, per_bin = byte_histogram([], t_end=5.0, n_bins=4)
    assert per_bin.sum() == 0


def test_histogram_validation():
    with pytest.raises(ValueError):
        byte_histogram([], t_end=0.0)
    with pytest.raises(ValueError):
        byte_histogram([], t_end=1.0, n_bins=0)


def test_events_past_t_end_clipped():
    timeline = [(10.0, 7.0)]
    _, per_bin = byte_histogram(timeline, t_end=2.0, n_bins=2)
    assert per_bin.sum() == 7.0  # clipped into the final bin


def test_burstiness_uniform_traffic_is_smooth():
    timeline = [(t, 8.0) for t in np.linspace(0.01, 9.99, 1000)]
    assert burstiness(timeline, t_end=10.0, n_bins=10) < 0.05


def test_burstiness_single_spike_is_high():
    timeline = [(5.0, 8.0)] * 100
    assert burstiness(timeline, t_end=10.0, n_bins=10) > 2.0


def test_burstiness_empty_is_zero():
    assert burstiness([], t_end=10.0) == 0.0


def test_peak_to_mean():
    uniform = [(t, 1.0) for t in np.linspace(0.01, 9.99, 1000)]
    assert peak_to_mean(uniform, 10.0, 10) == pytest.approx(1.0, rel=0.05)
    spike = [(5.0, 1.0)] * 10
    assert peak_to_mean(spike, 10.0, 10) == pytest.approx(10.0)
    assert peak_to_mean([], 10.0) == 1.0


def test_burstiness_scale_invariant_in_bytes():
    timeline_small = [(t, 1.0) for t in (1.0, 1.1, 5.0)]
    timeline_big = [(t, 1000.0) for t in (1.0, 1.1, 5.0)]
    assert burstiness(timeline_small, 10.0) == pytest.approx(
        burstiness(timeline_big, 10.0)
    )
