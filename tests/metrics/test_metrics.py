"""Tests for counters, run results, and table formatting."""

import pytest

from repro.metrics.counters import Counters, RunResult
from repro.metrics.tables import (
    format_generic_table,
    format_runtime_table,
    format_scaling_series,
)


def test_counters_default_zero_and_merge():
    c = Counters()
    c["edges"] += 10
    other = Counters({"edges": 5, "msgs": 2})
    c.merge(other)
    assert c["edges"] == 15 and c["msgs"] == 2


def test_counters_merge_with_prefix():
    c = Counters()
    c.merge(Counters({"busy": 1.5}), prefix="gpu0_")
    assert c["gpu0_busy"] == 1.5


def test_run_result_fields():
    r = RunResult("atos", "bfs", "road-usa", 4, time_ms=1.25)
    assert r.framework == "atos"
    assert r.counters == Counters()


def test_speedup_over():
    fast = RunResult("a", "bfs", "d", 1, time_ms=1.0)
    slow = RunResult("b", "bfs", "d", 1, time_ms=4.0)
    assert fast.speedup_over(slow) == 4.0
    assert slow.speedup_over(fast) == 0.25


def test_format_runtime_table_basic():
    text = format_runtime_table(
        "Title", ["1 GPU", "2 GPUs"], {"ds": [12.345, 6.0]}
    )
    assert "Title" in text and "ds" in text
    assert "12.3" in text


def test_format_runtime_table_ms_formatting():
    text = format_runtime_table(
        "t", ["1"], {"big": [512.3], "mid": [51.23], "small": [0.5123]}
    )
    assert "512" in text
    assert "51.2" in text
    assert "0.512" in text


def test_format_scaling_series_header():
    text = format_scaling_series("t", [1, 2, 4], {"fw": [8.0, 4.0, 2.0]})
    assert "1 GPU" in text and "4 GPUs" in text
    assert "4.00" in text  # 8/2


def test_format_generic_table_empty_rows():
    text = format_generic_table("t", ["a"], [])
    assert "t" in text and "a" in text


def test_format_generic_table_widths():
    text = format_generic_table(
        "t", ["col"], [["x"]], widths=[10]
    )
    assert text.splitlines()[1].endswith("col")
