"""Tests for machine configs, topologies (Fig 6) and the DES fabric."""

import numpy as np
import pytest

from repro.config import CostModel, daisy, summit_ib, summit_node
from repro.errors import ConfigurationError, TopologyError
from repro.interconnect import NetworkFabric, Topology
from repro.sim import Environment


# ----------------------------------------------------------- MachineConfig
def test_daisy_matches_appendix_matrix():
    machine = daisy()
    # Dual-link pairs (0,3) and (1,2) at 50 GB/s, others 25 GB/s.
    assert machine.link(0, 3).bandwidth == 50000.0
    assert machine.link(1, 2).bandwidth == 50000.0
    assert machine.link(0, 1).bandwidth == 25000.0
    assert machine.link(2, 0).bandwidth == 25000.0


def test_daisy_subset():
    machine = daisy(2)
    assert machine.n_gpus == 2
    assert (0, 1) in machine.links
    assert all(i < 2 and j < 2 for (i, j) in machine.links)


def test_daisy_subset_validation():
    with pytest.raises(ConfigurationError):
        daisy(5)
    with pytest.raises(ConfigurationError):
        daisy(0)


def test_summit_node_socket_penalty():
    machine = summit_node()
    same_socket = machine.link(0, 1)
    cross_socket = machine.link(0, 3)
    assert cross_socket.latency > same_socket.latency
    assert cross_socket.bandwidth < same_socket.bandwidth


def test_summit_ib_uniform_links():
    machine = summit_ib(8)
    assert machine.inter_node
    specs = set(
        (spec.bandwidth, spec.latency) for spec in machine.links.values()
    )
    assert len(specs) == 1
    assert machine.link(0, 7).bandwidth == 12500.0


def test_missing_link_raises():
    machine = daisy(2)
    with pytest.raises(ConfigurationError):
        machine.link(0, 3)


# --------------------------------------------------------------- Topology
def test_topology_latency_matrix_daisy():
    topo = Topology(daisy())
    lat = topo.latency_matrix()
    assert lat.shape == (4, 4)
    assert np.all(np.diag(lat) == 0)
    off_diag = lat[~np.eye(4, dtype=bool)]
    assert np.all(off_diag > 0)
    # Daisy is latency-uniform (Fig 6, left).
    assert len(np.unique(off_diag)) == 1


def test_topology_summit_node_has_higher_mean_latency():
    # Figure 6: Summit-node topology penalizes >half of GPU pairs.
    daisy_lat = Topology(daisy(4)).mean_pair_latency()
    summit_lat = Topology(summit_node(6)).mean_pair_latency()
    assert summit_lat > 1.5 * daisy_lat


def test_topology_describe_mentions_duallinks():
    text = Topology(daisy()).describe()
    assert "NV2" in text and "NV1" in text and "X" in text


def test_topology_missing_route():
    topo = Topology(daisy(2))
    with pytest.raises(TopologyError):
        topo.link(0, 3)


def test_bisection_bandwidth_positive_and_bounded():
    topo = Topology(daisy())
    bisect = topo.bisection_bandwidth()
    total = topo.bandwidth_matrix().sum()
    assert 0 < bisect < total


# ---------------------------------------------------------- NetworkFabric
def test_fabric_delivers_payload():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    delivered = []
    fabric.send(0, 1, 64, "hello", lambda m: delivered.append(
        (env.now, m.payload)))
    env.run()
    assert len(delivered) == 1
    t, payload = delivered[0]
    assert payload == "hello"
    link = daisy(2).link(0, 1)
    assert t >= link.latency


def test_fabric_arrival_time_includes_latency_and_serialization():
    env = Environment()
    fabric = NetworkFabric(env, summit_ib(2))
    model = fabric.topology.link(0, 1)
    arrival = fabric.send(0, 1, 1 << 20, None, lambda m: None)
    expected = model.serialization_time(1 << 20) + model.spec.latency
    assert arrival == pytest.approx(expected, rel=0.01)


def test_fabric_serializes_messages_on_one_link():
    env = Environment()
    fabric = NetworkFabric(env, summit_ib(2))
    a1 = fabric.send(0, 1, 1 << 20, None, lambda m: None)
    a2 = fabric.send(0, 1, 1 << 20, None, lambda m: None)
    model = fabric.topology.link(0, 1)
    assert a2 - a1 == pytest.approx(
        model.serialization_time(1 << 20), rel=0.01
    )


def test_fabric_different_links_run_in_parallel():
    env = Environment()
    fabric = NetworkFabric(env, daisy(4))
    a1 = fabric.send(0, 1, 1 << 20, None, lambda m: None)
    a2 = fabric.send(2, 3, 1 << 20, None, lambda m: None)
    # No shared link: both arrive at the single-message time.
    assert a1 == pytest.approx(a2, rel=0.05)


def test_fabric_in_flight_accounting():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    assert fabric.quiescent
    fabric.send(0, 1, 8, None, lambda m: None)
    assert fabric.in_flight == 1
    env.run()
    assert fabric.quiescent


def test_fabric_extra_latency():
    env = Environment()
    base_env = Environment()
    base = NetworkFabric(base_env, daisy(2))
    slow = NetworkFabric(env, daisy(2))
    t_base = base.send(0, 1, 8, None, lambda m: None)
    t_slow = slow.send(0, 1, 8, None, lambda m: None, extra_latency=10.0)
    assert t_slow == pytest.approx(t_base + 10.0)


def test_fabric_rejects_self_send():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    with pytest.raises(ValueError):
        fabric.send(0, 0, 8, None, lambda m: None)


def test_fabric_stats():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    fabric.send(0, 1, 100, None, lambda m: None)
    fabric.send(1, 0, 50, None, lambda m: None)
    env.run()
    stats = fabric.stats()
    assert stats["messages"] == 2
    assert stats["bytes"] == 150
    assert stats["wire_bytes"] >= 150
    assert 0 < stats["max_link_utilization"] <= 1.0


def test_link_channel_counters():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    fabric.send(0, 1, 100, None, lambda m: None)
    env.run()
    channel = fabric.channels[(0, 1)]
    assert channel.messages_sent == 1
    assert channel.bytes_sent == 100
    assert channel.busy_time > 0


# ------------------------------------------------------- degraded mode
def test_mark_rank_down_blocks_routes():
    machine = daisy()
    topo = Topology(machine)
    assert topo.down_ranks == frozenset()
    assert topo.route_up(0, 1)
    topo.mark_rank_down(1)
    assert topo.down_ranks == frozenset({1})
    assert not topo.route_up(0, 1)
    assert not topo.route_up(1, 2)  # dead as source too
    assert topo.route_up(0, 2)
    with pytest.raises(TopologyError):
        topo.mark_rank_down(99)


def test_fabric_refuses_sends_on_down_routes():
    env = Environment()
    fabric = NetworkFabric(env, daisy())
    fabric.topology.mark_rank_down(2)
    with pytest.raises(TopologyError, match="degraded"):
        fabric.send(0, 2, 64, "p", lambda msg: None)
    with pytest.raises(TopologyError, match="degraded"):
        fabric.send(2, 0, 64, "p", lambda msg: None)
    # Survivor-to-survivor traffic is unaffected.
    fabric.send(0, 1, 64, "p", lambda msg: None)
    env.run()
