"""Tests for link cost models: framing, efficiency, timing (Figs 2 & 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GB_PER_S, LinkSpec
from repro.interconnect import (
    InfiniBandModel,
    LinkModel,
    NVLinkModel,
    PCIeModel,
    default_ib,
    default_nvlink,
    default_pcie,
    optimal_batch_size,
)
from repro.interconnect.nvlink import (
    MAX_SECTORS_PER_PACKET,
    PACKET_HEADER_BYTES,
    SECTOR_BYTES,
)


# ------------------------------------------------------------------ base
def test_ideal_link_has_no_overhead():
    spec = LinkSpec(kind="nvlink", bandwidth=1000.0, latency=1.0)
    model = LinkModel(spec)
    assert model.wire_bytes(100) == 100
    assert model.efficiency(100) == 1.0
    assert model.transfer_time(1000) == pytest.approx(2.0)


def test_negative_payload_rejected():
    for model in (default_nvlink(), default_pcie(), default_ib()):
        with pytest.raises(ValueError):
            model.wire_bytes(-1)


def test_zero_payload():
    for model in (default_nvlink(), default_pcie(), default_ib()):
        assert model.wire_bytes(0) == 0
        assert model.efficiency(0) == 0.0


# ---------------------------------------------------------------- NVLink
def test_nvlink_sector_rounding():
    model = default_nvlink()
    # 1 byte still moves a whole sector plus a packet header.
    assert model.wire_bytes(1) == SECTOR_BYTES + PACKET_HEADER_BYTES
    assert model.wire_bytes(32) == SECTOR_BYTES + PACKET_HEADER_BYTES
    assert model.wire_bytes(33) == 2 * SECTOR_BYTES + PACKET_HEADER_BYTES


def test_nvlink_full_packet():
    model = default_nvlink()
    full = MAX_SECTORS_PER_PACKET * SECTOR_BYTES  # 128 B
    assert model.wire_bytes(full) == full + PACKET_HEADER_BYTES
    # 129 bytes spills into a second packet.
    assert model.wire_bytes(full + 1) == (
        5 * SECTOR_BYTES + 2 * PACKET_HEADER_BYTES
    )


def test_nvlink_32B_payload_exceeds_half_efficiency():
    # Paper: "even a 32 byte payload has more than 50% efficiency".
    assert default_nvlink().efficiency(32) > 0.5


def test_nvlink_efficiency_staircase_is_monotone_at_sector_steps():
    model = default_nvlink()
    at_sectors = [model.efficiency(k * SECTOR_BYTES) for k in range(1, 5)]
    assert at_sectors == sorted(at_sectors)


def test_nvlink_beats_pcie_at_small_sizes():
    # Figure 2: the NVLink curve sits above PCIe gen3 across the
    # 25-125 B range the paper sweeps.
    nvlink, pcie = default_nvlink(), default_pcie()
    for size in (25, 32, 50, 64, 75, 96, 100, 125):
        assert nvlink.efficiency(size) > pcie.efficiency(size)


def test_nvlink_coalescing_amortizes_headers():
    model = default_nvlink()
    coalesced = model.coalesced_wire_bytes(32, 4)  # warp of 4-byte accesses
    scattered = model.scattered_wire_bytes(32, 4)
    assert coalesced < scattered / 5


def test_nvlink_coalescing_validation():
    model = default_nvlink()
    with pytest.raises(ValueError):
        model.coalesced_wire_bytes(-1, 4)
    with pytest.raises(ValueError):
        model.scattered_wire_bytes(1, -4)


# ----------------------------------------------------------------- PCIe
def test_pcie_dword_rounding():
    model = default_pcie()
    w1 = model.wire_bytes(1)
    w4 = model.wire_bytes(4)
    assert w1 == w4  # 1 byte pads to a dword
    assert model.wire_bytes(5) == w4 + 4


def test_pcie_multi_tlp_split():
    from repro.interconnect.pcie import MAX_TLP_PAYLOAD_BYTES, TLP_OVERHEAD_BYTES

    model = default_pcie()
    one = model.wire_bytes(MAX_TLP_PAYLOAD_BYTES)
    two = model.wire_bytes(MAX_TLP_PAYLOAD_BYTES + 1)
    assert two == one + 4 + TLP_OVERHEAD_BYTES


def test_pcie_efficiency_grows_with_payload():
    model = default_pcie()
    assert model.efficiency(128) > model.efficiency(16) > model.efficiency(4)


# ------------------------------------------------------------------- IB
def test_ib_latency_flat_then_linear():
    model = default_ib()
    # Small messages: latency dominated by fixed costs.
    small = model.transfer_time(8)
    assert small == pytest.approx(
        model.cost.ib_base_latency + model.cost.ib_message_overhead,
        rel=0.05,
    )
    # Large messages: latency dominated by serialization.
    big = model.transfer_time(1 << 26)
    assert big == pytest.approx((1 << 26) / model.spec.bandwidth, rel=0.05)


def test_ib_bandwidth_saturates():
    model = default_ib()
    bw_small = model.achieved_bandwidth(64)
    bw_1mib = model.achieved_bandwidth(1 << 20)
    bw_huge = model.achieved_bandwidth(1 << 28)
    peak = model.spec.bandwidth
    assert bw_small < 0.01 * peak
    assert bw_1mib > 0.85 * peak  # paper: 1 MiB is near-peak
    assert bw_huge > bw_1mib


def test_ib_optimal_batch_size_is_about_1mib():
    # Paper Figure 4: they choose 2**20 B.
    batch = optimal_batch_size(default_ib())
    assert 1 << 18 <= batch <= 1 << 22


def test_ib_mtu_packet_overhead():
    from repro.interconnect.infiniband import (
        IB_MTU_BYTES,
        IB_PACKET_OVERHEAD_BYTES,
    )

    model = default_ib()
    assert model.wire_bytes(IB_MTU_BYTES) == (
        IB_MTU_BYTES + IB_PACKET_OVERHEAD_BYTES
    )
    assert model.wire_bytes(IB_MTU_BYTES + 1) == (
        IB_MTU_BYTES + 1 + 2 * IB_PACKET_OVERHEAD_BYTES
    )


def test_ib_sender_occupancy_below_transfer_time():
    model = default_ib()
    assert model.sender_occupancy(4096) < model.transfer_time(4096)


# ------------------------------------------------------------ properties
@given(st.integers(0, 1 << 22))
@settings(max_examples=80)
def test_property_wire_bytes_at_least_payload(payload):
    for model in (default_nvlink(), default_pcie(), default_ib()):
        assert model.wire_bytes(payload) >= payload


@given(st.integers(1, 1 << 22))
@settings(max_examples=80)
def test_property_efficiency_in_unit_interval(payload):
    for model in (default_nvlink(), default_pcie(), default_ib()):
        assert 0 < model.efficiency(payload) <= 1.0


@given(st.integers(1, 1 << 18), st.integers(1, 1 << 18))
@settings(max_examples=60)
def test_property_wire_bytes_monotone(a, b):
    lo, hi = min(a, b), max(a, b)
    for model in (default_nvlink(), default_pcie(), default_ib()):
        assert model.wire_bytes(lo) <= model.wire_bytes(hi)


@given(st.integers(1, 1 << 24))
@settings(max_examples=60)
def test_property_transfer_time_exceeds_latency(payload):
    for model in (default_nvlink(), default_pcie(), default_ib()):
        assert model.transfer_time(payload) > model.spec.latency


def test_ib_optimal_batch_size_matches_config_default():
    # The derivation (Figure 4 knee) and the shared config knob must
    # not drift apart: the paper's BATCH_SIZE is *derived*, then pinned.
    from repro.config import DEFAULT_BATCH_SIZE

    assert optimal_batch_size(default_ib()) == DEFAULT_BATCH_SIZE
