"""Property-based tests for the DES network fabric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import daisy, summit_ib
from repro.interconnect import NetworkFabric
from repro.sim import Environment

# Message scripts: (src, dst, nbytes, delay before send)
messages = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.integers(1, 1 << 16),
        st.floats(0.0, 50.0),
    ),
    min_size=1,
    max_size=30,
)


def _run_script(machine, script):
    env = Environment()
    fabric = NetworkFabric(env, machine)
    deliveries = []

    def proc(env):
        for src, dst, nbytes, delay in script:
            if src == dst:
                continue
            yield env.timeout(delay)
            fabric.send(
                src, dst, nbytes, (src, dst, nbytes),
                lambda m: deliveries.append((env.now, m)),
            )

    env.process(proc(env))
    env.run()
    return fabric, deliveries


@given(messages)
@settings(max_examples=60, deadline=None)
def test_property_every_message_delivered_exactly_once(script):
    fabric, deliveries = _run_script(daisy(4), script)
    expected = [
        (s, d, b) for s, d, b, _ in script if s != d
    ]
    assert len(deliveries) == len(expected)
    assert sorted(m.payload for _, m in deliveries) == sorted(expected)
    assert fabric.quiescent


@given(messages)
@settings(max_examples=60, deadline=None)
def test_property_arrival_never_precedes_send_plus_latency(script):
    fabric, deliveries = _run_script(summit_ib(4), script)
    for _, message in deliveries:
        model = fabric.topology.link(message.src, message.dst)
        assert message.arrival_time >= (
            message.send_time
            + model.spec.latency
            + model.serialization_time(message.payload_bytes)
            - 1e-9
        )


@given(messages)
@settings(max_examples=40, deadline=None)
def test_property_per_link_fifo(script):
    """Messages on one directed link arrive in send order."""
    fabric, deliveries = _run_script(daisy(4), script)
    per_link: dict = {}
    for when, message in deliveries:
        per_link.setdefault((message.src, message.dst), []).append(
            (message.send_time, when)
        )
    for events in per_link.values():
        send_order = [w for _, w in sorted(events)]
        assert send_order == sorted(send_order)


@given(messages)
@settings(max_examples=40, deadline=None)
def test_property_byte_accounting(script):
    fabric, _ = _run_script(daisy(4), script)
    expected_bytes = sum(b for s, d, b, _ in script if s != d)
    assert fabric.total_bytes == expected_bytes
    assert fabric.stats()["bytes"] == expected_bytes
    per_channel = sum(c.bytes_sent for c in fabric.channels.values())
    assert per_channel == expected_bytes


@given(messages)
@settings(max_examples=40, deadline=None)
def test_property_transfer_intervals_match_busy_time(script):
    fabric, _ = _run_script(daisy(4), script)
    interval_total = sum(e - s for s, e in fabric.transfer_intervals)
    busy_total = sum(c.busy_time for c in fabric.channels.values())
    assert interval_total == pytest.approx(busy_total)
