"""The DES service model and its queueing-theory validators.

Each validator is tested both ways: a healthy trajectory passes, and a
deliberately broken one — doctored occupancy, linear latencies, a
strict-priority scheduler — fails.  A validator that cannot fail is
not validating anything.
"""

import pytest

from repro.serve.model import (
    Arrival,
    ArrivalLog,
    ModelRun,
    ServiceModel,
    poisson_log,
)
from repro.serve.protocol import PRIORITY_CLASSES
from repro.serve.stats import ArrivalRecord, ServiceStats
from repro.serve.validate import (
    littles_law_check,
    mm1_theory_latency,
    mm1_trend_check,
    starvation_check,
)

#: One mid-load M/M/1 trajectory shared by several tests.
LOG = poisson_log(rate=0.7, mean_service_s=1.0, duration_s=1200.0, seed=3)
RUN = ServiceModel(workers=1, max_queue=10**6).simulate(LOG)


# ------------------------------------------------------------ the model
def test_poisson_log_is_seeded_and_sized():
    again = poisson_log(rate=0.7, mean_service_s=1.0, duration_s=1200.0, seed=3)
    assert again.arrivals == LOG.arrivals
    # ~rate * duration arrivals, within 4 sigma.
    assert abs(len(LOG) - 840) < 4 * 840**0.5
    different = poisson_log(
        rate=0.7, mean_service_s=1.0, duration_s=1200.0, seed=4
    )
    assert different.arrivals != LOG.arrivals


def test_poisson_log_rejects_bad_args():
    with pytest.raises(ValueError):
        poisson_log(rate=0.0, mean_service_s=1.0, duration_s=10.0)
    with pytest.raises(ValueError, match="unknown priorities"):
        poisson_log(
            rate=1.0, mean_service_s=1.0, duration_s=10.0,
            priority_mix={"urgent": 1.0},
        )


def test_model_conserves_jobs():
    assert len(RUN.jobs) == len(LOG)
    assert RUN.rejected == 0  # effectively unbounded queue
    assert len(RUN.completed()) == RUN.admitted
    # Every completed job obeys arrive <= start <= done.
    for job in RUN.completed():
        assert job.t_arrive <= job.t_start <= job.t_done
        assert job.t_done == pytest.approx(job.t_start + job.service_s)


def test_model_utilization_tracks_offered_load():
    assert RUN.utilization == pytest.approx(0.7, abs=0.05)


def test_bounded_queue_rejects_under_overload():
    overload = poisson_log(
        rate=3.0, mean_service_s=1.0, duration_s=300.0, seed=5
    )
    run = ServiceModel(workers=1, max_queue=5).simulate(overload)
    assert run.rejected > 0
    assert run.admitted + run.rejected == len(overload)
    # The bounded queue keeps latency finite: nothing waits longer
    # than the queue could possibly hold.
    for job in run.completed():
        assert job.wait_s < 5 * 60.0


# ------------------------------------------------------- Little's law
def test_littles_law_holds_on_healthy_trajectory():
    check = littles_law_check(RUN)
    assert check.ok
    assert check.detail["rel_err"] < 0.05


def test_littles_law_catches_doctored_occupancy():
    doctored = ModelRun(
        workers=RUN.workers,
        jobs=RUN.jobs,
        occupancy_samples=[2.0 * s for s in RUN.occupancy_samples],
        sample_dt=RUN.sample_dt,
        busy_s=RUN.busy_s,
        horizon_s=RUN.horizon_s,
    )
    assert not littles_law_check(doctored).ok


# -------------------------------------------------- M/M/1 nonlinearity
def test_mm1_theory_latency():
    assert mm1_theory_latency(0.0, 2.0) == 2.0
    assert mm1_theory_latency(0.5, 2.0) == 4.0
    with pytest.raises(ValueError):
        mm1_theory_latency(1.0, 2.0)


def test_mm1_blowup_reproduced_by_model():
    points = []
    for i, rho in enumerate((0.5, 0.7, 0.9)):
        # Long horizon: near saturation the latency estimator mixes
        # slowly (variance ~ (1-rho)^-4), and this test pins the band.
        log = poisson_log(
            rate=rho, mean_service_s=1.0, duration_s=4000.0, seed=10 + i
        )
        run = ServiceModel(workers=1, max_queue=10**6).simulate(log)
        check = littles_law_check(run)
        assert check.ok, check.summary
        points.append((run.utilization, run.mean_latency_s()))
    trend = mm1_trend_check(points, 1.0)
    assert trend.ok, trend.summary


def test_mm1_trend_rejects_linear_latency():
    # A service that hides queueing (reports latency linear in load)
    # fails the convexity/theory-band check.
    linear = [(0.5, 2.0), (0.7, 2.4), (0.9, 2.8)]
    assert not mm1_trend_check(linear, 1.0).ok


def test_mm1_trend_rejects_non_monotone():
    points = [(0.5, 2.0), (0.7, 3.4), (0.9, 3.0)]
    assert not mm1_trend_check(points, 1.0).ok


def test_mm1_trend_needs_three_points():
    with pytest.raises(ValueError):
        mm1_trend_check([(0.5, 2.0), (0.9, 10.0)], 1.0)


# ------------------------------------------------- starvation bounds
#: Sustained overload (rho = 1.2 on 2 workers) where bulk asks for
#: well under its guaranteed 1/12 share.
OVERLOAD = poisson_log(
    rate=2.4,
    mean_service_s=1.0,
    duration_s=500.0,
    seed=100,
    priority_mix={"interactive": 0.35, "batch": 0.61, "bulk": 0.04},
)


def _starvation(weights):
    run = ServiceModel(
        workers=2, max_queue=10**6, weights=weights
    ).simulate(OVERLOAD)
    return starvation_check(
        run.rates_by_class(),
        run.waits_by_class(),
        run.mean_service_s,
        workers=2,
        weights=PRIORITY_CLASSES,  # judge against the nominal contract
    )


def test_weighted_rr_bounds_bulk_wait_under_overload():
    check = _starvation(PRIORITY_CLASSES)
    assert check.ok, check.summary
    assert "bulk" in check.detail["protected"]


def test_strict_priority_violates_the_bound():
    # Near-strict priority: the same traffic, but the scheduler now
    # all-but-ignores bulk while higher classes are backlogged.  The
    # protected-class bound must catch the starvation.
    strict = {"interactive": 10**6, "batch": 10**3, "bulk": 1}
    check = _starvation(strict)
    assert not check.ok
    assert "bulk" in check.detail["violations"]


def test_quick_study_passes_end_to_end():
    # The committed-SERVE_VALIDATION pipeline, quick mode: every
    # validator green, the rendering carries the verdict, and the
    # document round-trips through its own schema fields.
    from repro.serve.study import STUDY_SCHEMA, render_study, run_serve_study

    doc = run_serve_study(seed=0, quick=True)
    assert doc["ok"], render_study(doc)
    assert doc["schema"] == STUDY_SCHEMA
    assert len(doc["mm1_rows"]) == 3
    assert all(row["littles_ok"] for row in doc["mm1_rows"])
    rendered = render_study(doc)
    assert "overall: PASS" in rendered


def test_starvation_needs_two_classes():
    with pytest.raises(ValueError):
        starvation_check(
            {"batch": 1.0}, {"batch": 0.5}, 1.0, 1, PRIORITY_CLASSES
        )


# -------------------------------------------------- stats round trips
def test_arrival_log_from_stats_backfills_rejected_service():
    stats = ServiceStats()
    stats.record_cell(
        ArrivalRecord(0.0, "batch", "completed", 2.0, t_start=0.0, t_done=2.0)
    )
    stats.record_rejected("batch")
    log = ArrivalLog.from_stats(stats)
    assert len(log) == 2
    # The rejected arrival replays with its class's mean demand.
    assert log.arrivals[-1].service_s == pytest.approx(2.0)


def test_model_from_stats_reads_config():
    stats = ServiceStats(
        config={"workers": 3, "max_queue": 7, "weights": {"batch": 2}}
    )
    model = ServiceModel.from_stats(stats)
    assert model.workers == 3
    assert model.max_queue == 7
    assert model.weights == {"batch": 2}
