"""End-to-end tests of the HTTP service over a real worker fleet.

The service runs in a background thread with its own asyncio loop and
real forked workers; tests talk to it over real sockets through the
stdlib client.  A stub executor (sleep-by-spec) keeps the concurrency
tests fast and deterministic; one test runs the real cached runner to
pin the acceptance property — streamed results digest-identical to a
direct ``repro run``.
"""

import asyncio
import hashlib
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.service import ReproService, ServeConfig

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SPEC = {
    "framework": "atos-standard-persistent",
    "app": "bfs",
    "dataset": "hollywood-2009",
    "machine": "daisy",
    "n_gpus": 1,
}


@dataclass
class FakeResult:
    """Stub RunResult: enough surface for the service's summaries."""

    value: str
    time_ms: float = 1.0
    cache_hits: int = 0
    cache_misses: int = 1
    counters: dict = field(default_factory=dict)

    def digest(self) -> str:
        return hashlib.sha256(self.value.encode()).hexdigest()


#: Directory stub executions mark; set per-test via the environment so
#: forked workers inherit it.
_MARK_ENV = "REPRO_TEST_EXEC_DIR"


def stub_run(spec, trace=False):
    """Deterministic stub executor: sleep spec.seed ms, mark, return.

    Module-level so forked fleet workers resolve it; the execution
    marker file is how tests count *actual* executions (the dedup
    proof: N submits, one marker).
    """
    time.sleep(spec.seed / 1000.0)
    mark_dir = os.environ.get(_MARK_ENV)
    if mark_dir:
        label = spec.label().replace("/", "_")
        with open(
            os.path.join(mark_dir, f"{label}.{os.getpid()}.{time.time_ns()}"),
            "w",
        ):
            pass
    trace_doc = {"traceEvents": [{"name": spec.label()}]} if trace else None
    return FakeResult(value=spec.label()), trace_doc


class ServiceThread:
    """A live service on an ephemeral port, in a background loop."""

    def __init__(self, config: ServeConfig, run_fn=stub_run):
        self.config = config
        self.run_fn = run_fn
        self.service = None
        self.port = None
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.service = ReproService(self.config, run_fn=self.run_fn)
        _, self.port = await self.service.start()
        self._ready.set()
        await self.service._stopped.wait()

    def client(self, timeout_s: float = 30.0) -> ServeClient:
        return ServeClient(port=self.port, timeout_s=timeout_s)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(30), "service did not start"
        return self

    def __exit__(self, *exc):
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(), self.loop
        )
        future.result(timeout=60)
        self._thread.join(timeout=30)


def _config(**overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, max_queue=16, drain_grace_s=10.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


# ----------------------------------------------------------- concurrency
def test_eight_concurrent_requests_all_served():
    with ServiceThread(_config(workers=4, max_queue=32)) as live:
        client = live.client()
        jobs, errors = [], []

        def submit(i):
            try:
                body = {"spec": dict(SPEC, seed=100 + i)}
                jobs.append(client.submit(body)["job_id"])
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(jobs)) == 8
        for job_id in jobs:
            final = client.wait(job_id)
            assert final["state"] == "done"
            assert final["results"][0]["status"] == "ok"
        counters = client.stats()["counters"]
        assert counters["service_requests"] == 8
        assert counters["service_completed"] == 8


def test_identical_concurrent_cells_execute_once():
    with tempfile.TemporaryDirectory() as marks:
        os.environ[_MARK_ENV] = marks
        try:
            # seed=300 -> each execution takes 300 ms, so all five
            # submits land while the first is still in flight.
            with ServiceThread(_config(workers=2)) as live:
                client = live.client()
                body = {"spec": dict(SPEC, seed=300)}
                jobs = [client.submit(body)["job_id"] for _ in range(5)]
                digests = set()
                for job_id in jobs:
                    final = client.wait(job_id)
                    assert final["state"] == "done"
                    digests.add(final["results"][0]["digest"])
                assert len(digests) == 1
                counters = client.stats()["counters"]
                assert counters["service_cells"] == 5
                assert counters["service_deduped"] == 4
                assert counters["service_completed"] == 1
        finally:
            del os.environ[_MARK_ENV]
        executions = os.listdir(marks)
        assert len(executions) == 1  # the single-flight proof


def test_admission_control_full_queue_answers_429():
    # One worker, queue bound 2: a slow cell occupies the worker, two
    # more fill the queue, the next submit must be refused with a
    # Retry-After hint — and succeed after the backlog drains.
    with ServiceThread(_config(workers=1, max_queue=2)) as live:
        client = live.client()
        slow = [client.submit({"spec": dict(SPEC, seed=500 + i)})
                for i in range(3)]
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if client.stats()["live"]["queued"] >= 2:
                break
            time.sleep(0.02)
        with pytest.raises(ServeError) as excinfo:
            client.submit({"spec": dict(SPEC, seed=900)})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s >= 1
        assert client.stats()["counters"]["service_rejected"] == 1
        for accepted in slow:
            client.wait(accepted["job_id"])
        retried = client.submit({"spec": dict(SPEC, seed=900)})
        assert client.wait(retried["job_id"])["state"] == "done"


def test_sweep_request_backpressure_window():
    # A 6-cell sweep through a 1-worker service with a tiny queue:
    # the per-request in-flight window feeds cells as space frees,
    # so the whole sweep completes without a rejection.
    config = _config(workers=1, max_queue=2, max_inflight_per_request=2)
    with ServiceThread(config) as live:
        client = live.client()
        body = {
            "specs": [dict(SPEC, seed=200 + i) for i in range(6)],
            "priority": "bulk",
        }
        accepted = client.submit(body)
        assert accepted["cells"] == 6
        final = client.wait(accepted["job_id"])
        assert final["state"] == "done"
        assert final["cells_done"] == 6
        assert client.stats()["counters"].get("service_rejected", 0) == 0


# ------------------------------------------------------------- streaming
def test_stream_replays_history_for_late_watchers():
    with ServiceThread(_config()) as live:
        client = live.client()
        accepted = client.submit(
            {"specs": [dict(SPEC, seed=150 + i) for i in range(3)]}
        )
        first = list(client.watch(accepted["job_id"]))
        # The job is long done; a late watcher still gets every event.
        second = list(client.watch(accepted["job_id"]))
        assert first == second
        assert [e["event"] for e in first].count("cell") == 3
        assert first[-1]["event"] == "done"


def test_priority_rejected_and_status_endpoints():
    with ServiceThread(_config()) as live:
        client = live.client()
        with pytest.raises(ServeError) as excinfo:
            client.submit({"spec": SPEC, "priority": "urgent"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"nope": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.status("j99999")
        assert excinfo.value.status == 404
        assert client.healthz()["status"] == "ok"


def test_trace_flag_round_trip():
    with ServiceThread(_config()) as live:
        client = live.client()
        accepted = client.submit({"spec": dict(SPEC, seed=1), "trace": True})
        final = client.wait(accepted["job_id"])
        assert final["results"][0].get("trace") is True
        doc = client.trace(accepted["job_id"], 0)
        assert doc["traceEvents"]
        untraced = client.submit({"spec": dict(SPEC, seed=2)})
        client.wait(untraced["job_id"])
        with pytest.raises(ServeError) as excinfo:
            client.trace(untraced["job_id"], 0)
        assert excinfo.value.status == 404


# ----------------------------------------------------------------- drain
def test_drain_writes_stats_and_refuses_new_work():
    stats_path = os.path.join(tempfile.mkdtemp(), "stats.json")
    with ServiceThread(_config(stats_path=stats_path)) as live:
        client = live.client()
        accepted = client.submit({"spec": dict(SPEC, seed=5)})
        client.wait(accepted["job_id"])
        client.drain()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                if client.healthz()["status"] == "draining":
                    break
            except (ConnectionError, OSError):
                break
            time.sleep(0.02)
        try:
            client.submit({"spec": dict(SPEC, seed=6)})
        except (ServeError, ConnectionError, OSError) as exc:
            if isinstance(exc, ServeError):
                assert exc.status == 503
        deadline = time.monotonic() + 20.0
        while not os.path.exists(stats_path):
            assert time.monotonic() < deadline, "stats never written"
            time.sleep(0.05)
    from repro.serve.stats import ServiceStats

    stats = ServiceStats.read(stats_path)
    assert stats.counters["service_completed"] >= 1
    assert stats.config["workers"] == 2
    assert any(r.status == "completed" for r in stats.arrivals)


# ------------------------------------------------------- the real runner
def test_real_runner_digest_matches_direct_run(tmp_path, monkeypatch):
    """Acceptance: streamed result digest == direct ``repro run``."""
    from repro.harness import runner
    from repro.serve.fleet import execute_serve_cell

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    direct = runner.run(
        SPEC["framework"], SPEC["app"], SPEC["dataset"],
        SPEC["machine"], SPEC["n_gpus"],
    )
    with ServiceThread(
        _config(workers=2), run_fn=execute_serve_cell
    ) as live:
        client = live.client(timeout_s=120.0)
        first = client.wait(client.submit({"spec": SPEC})["job_id"])
        assert first["state"] == "done"
        assert first["results"][0]["digest"] == direct.digest()
        # Same cell again: served from cache, digest-identical.
        second = client.wait(client.submit({"spec": SPEC})["job_id"])
        assert second["results"][0]["digest"] == direct.digest()
        assert second["results"][0]["cache_hit"] is True
        assert client.stats()["counters"]["service_cache_hits"] >= 1
