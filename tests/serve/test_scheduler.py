"""The weighted scheduler's promises, pinned.

The starvation bound the queueing validator checks is only as good as
the scheduler's guaranteed minimum share, so these tests pin the share
arithmetic exactly: over any window where every class stays
backlogged, a class with weight ``w`` gets ``w`` of every
``sum(weights)`` pops — not approximately, exactly (smooth weighted RR
is deterministic).
"""

import pytest

from repro.serve.protocol import PRIORITY_CLASSES
from repro.serve.scheduler import WeightedScheduler


def _fill(sched, per_class=50):
    for priority in PRIORITY_CLASSES:
        for i in range(per_class):
            assert sched.offer(priority, f"{priority}-{i}")


def test_fifo_within_a_class():
    sched = WeightedScheduler(max_queue=100)
    for i in range(5):
        sched.offer("batch", i)
    assert [sched.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_exact_weighted_shares_while_backlogged():
    sched = WeightedScheduler(max_queue=1000)
    _fill(sched, per_class=50)
    total = sum(PRIORITY_CLASSES.values())  # 12
    window = [sched.pop()[0] for _ in range(total * 4)]
    for priority, weight in PRIORITY_CLASSES.items():
        assert window.count(priority) == weight * 4


def test_interleaving_not_bursty():
    # Smooth weighted RR spreads the heavy class out; it must never
    # take more than its weight in consecutive pops.
    sched = WeightedScheduler(max_queue=1000)
    _fill(sched, per_class=50)
    pops = [sched.pop()[0] for _ in range(48)]
    longest = run = 1
    for a, b in zip(pops, pops[1:]):
        run = run + 1 if a == b == "interactive" else 1
        longest = max(longest, run)
    assert longest <= PRIORITY_CLASSES["interactive"]


def test_bounded_admission_and_retry_after():
    sched = WeightedScheduler(max_queue=3)
    assert sched.offer("batch", 1)
    assert sched.offer("bulk", 2)
    assert sched.offer("interactive", 3)
    assert sched.full
    assert not sched.offer("batch", 4)  # refused, not raised
    assert len(sched) == 3
    # Retry-After ~= queue depth * mean service / workers, floored at 1.
    assert sched.retry_after_s(2.0, workers=2) == 3
    assert sched.retry_after_s(0.001, workers=8) == 1
    sched.pop()
    assert not sched.full
    assert sched.offer("batch", 4)


def test_empty_pop_and_depths():
    sched = WeightedScheduler(max_queue=4)
    assert sched.pop() is None
    sched.offer("bulk", "j")
    assert sched.depths() == {"interactive": 0, "batch": 0, "bulk": 1}
    assert sched.depth("bulk") == 1
    assert list(sched) == ["j"]


def test_credit_resets_when_class_empties():
    # A class that drains and comes back later must not have banked
    # credit from its idle period: after re-offering, the first window
    # still follows the weighted share, not a bulk burst.
    sched = WeightedScheduler(max_queue=1000)
    sched.offer("bulk", "only")
    assert sched.pop() == ("bulk", "only")  # bulk emptied -> reset
    _fill(sched, per_class=50)
    first_twelve = [sched.pop()[0] for _ in range(12)]
    assert first_twelve.count("bulk") == 1


def test_unknown_priority_rejected():
    sched = WeightedScheduler(max_queue=4)
    with pytest.raises(ValueError, match="unknown priority"):
        sched.offer("urgent", 1)
    with pytest.raises(ValueError):
        sched.depth("urgent")


def test_determinism_across_instances():
    a = WeightedScheduler(max_queue=1000)
    b = WeightedScheduler(max_queue=1000)
    for sched in (a, b):
        _fill(sched, per_class=20)
    seq_a = [a.pop() for _ in range(60)]
    seq_b = [b.pop() for _ in range(60)]
    assert seq_a == seq_b


def test_validation_of_configs():
    with pytest.raises(ValueError):
        WeightedScheduler(max_queue=0)
    with pytest.raises(ValueError):
        WeightedScheduler({"batch": 0}, max_queue=4)
