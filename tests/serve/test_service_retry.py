"""Service-level retry and quarantine, end to end.

A worker *crash* (pipe EOF — ``os._exit``, OOM-kill, segfault) is the
one failure the service retries: execution is idempotent under the
run-cache key, so a respawned worker either recomputes the same pure
result or serves it from cache.  These tests drive a real forked fleet
with a stub executor whose crash budget is encoded in ``spec.seed``
(``seed - 9000`` crashes before succeeding), and pin:

* a crash-once spec succeeds on the retry, same digest, followers ride;
* a spec that keeps crashing is quarantined — the cell fails with the
  quarantine marker, further submits get 422, and the drained stats
  document names the spec;
* in-worker exceptions are deterministic and never retried.
"""

import hashlib
import os
import tempfile
import time

import pytest

from repro.serve.client import ServeError
from repro.serve.protocol import RetryPolicy, spec_from_json

from tests.serve.test_service_e2e import (
    _MARK_ENV,
    SPEC,
    FakeResult,
    ServiceThread,
    _config,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

#: Fast backoff so retries land in test time.
FAST_RETRY = {
    "interactive": RetryPolicy(max_attempts=2, backoff_base_s=0.01),
    "batch": RetryPolicy(max_attempts=3, backoff_base_s=0.01),
    "bulk": RetryPolicy(max_attempts=4, backoff_base_s=0.01),
}


def crashy_run(spec, trace=False):
    """Stub executor with a seed-encoded crash budget.

    ``seed >= 9000`` crashes ``seed - 9000`` times before succeeding
    (hard exit: no traceback, pipe EOF — exactly what the fleet reports
    as ``crashed``).  Attempts are counted via marker files so the
    budget survives the respawned process.  ``seed == 8999`` raises an
    ordinary exception instead (the never-retried control).
    """
    mark_dir = os.environ[_MARK_ENV]
    label = spec.label().replace("/", "_")
    prior = len(
        [f for f in os.listdir(mark_dir) if f.startswith(label + ".")]
    )
    with open(
        os.path.join(mark_dir, f"{label}.{prior}.{time.time_ns()}"), "w"
    ):
        pass
    if spec.seed == 8999:
        raise RuntimeError("deterministic in-worker failure")
    budget = spec.seed - 9000 if spec.seed >= 9000 else 0
    if prior < budget:
        os._exit(13)
    return FakeResult(value=spec.label()), None


def _expected_digest(spec_doc: dict) -> str:
    label = spec_from_json(spec_doc).label()
    return hashlib.sha256(label.encode()).hexdigest()


def test_crash_once_spec_succeeds_on_retry():
    spec = dict(SPEC, seed=9001)  # one crash, then clean
    with tempfile.TemporaryDirectory() as marks:
        os.environ[_MARK_ENV] = marks
        try:
            config = _config(workers=2, retry=dict(FAST_RETRY))
            with ServiceThread(config, run_fn=crashy_run) as live:
                client = live.client()
                final = client.wait(client.submit({"spec": spec})["job_id"])
                assert final["state"] == "done"
                result = final["results"][0]
                assert result["status"] == "ok"
                assert result["attempts"] == 2
                assert result["digest"] == _expected_digest(spec)
                counters = client.stats()["counters"]
                assert counters["service_retries"] == 1
                assert counters["service_respawn_retries"] == 1
                assert counters["resilience_jobs_retried"] == 1
                assert counters.get("service_quarantined", 0) == 0
        finally:
            del os.environ[_MARK_ENV]
        assert len(os.listdir(marks)) == 2  # crash + clean rerun


def test_followers_ride_the_retry():
    # Three concurrent submits of the same crash-once spec: single
    # flight keeps the cell registered across the retry, so all three
    # jobs resolve from the (successful) second attempt — and the
    # marker count proves only two executions ever happened.
    spec = dict(SPEC, seed=9001)
    with tempfile.TemporaryDirectory() as marks:
        os.environ[_MARK_ENV] = marks
        try:
            config = _config(workers=2, retry=dict(FAST_RETRY))
            with ServiceThread(config, run_fn=crashy_run) as live:
                client = live.client()
                jobs = [
                    client.submit({"spec": spec})["job_id"]
                    for _ in range(3)
                ]
                digests = set()
                for job_id in jobs:
                    final = client.wait(job_id)
                    assert final["state"] == "done"
                    digests.add(final["results"][0]["digest"])
                assert digests == {_expected_digest(spec)}
                counters = client.stats()["counters"]
                assert counters["service_deduped"] == 2
        finally:
            del os.environ[_MARK_ENV]
        assert len(os.listdir(marks)) == 2


def test_always_crashing_spec_is_quarantined():
    spec = dict(SPEC, seed=9999)  # crashes forever
    stats_path = os.path.join(tempfile.mkdtemp(), "stats.json")
    with tempfile.TemporaryDirectory() as marks:
        os.environ[_MARK_ENV] = marks
        try:
            config = _config(
                workers=1,
                retry=dict(FAST_RETRY),
                quarantine_after=2,
                stats_path=stats_path,
            )
            with ServiceThread(config, run_fn=crashy_run) as live:
                client = live.client()
                final = client.wait(client.submit({"spec": spec})["job_id"])
                assert final["state"] == "failed"
                result = final["results"][0]
                assert result["status"] == "crashed"
                assert result["quarantined"] is True
                assert result["attempts"] == 2  # stopped by quarantine
                with pytest.raises(ServeError) as excinfo:
                    client.submit({"spec": spec})
                assert excinfo.value.status == 422
                counters = client.stats()["counters"]
                assert counters["service_quarantined"] == 1
                assert counters["resilience_specs_quarantined"] == 1
                assert client.stats()["live"]["quarantined_specs"] == 1
                # A *different* spec is unaffected.
                clean = client.wait(
                    client.submit({"spec": dict(SPEC, seed=1)})["job_id"]
                )
                assert clean["state"] == "done"
        finally:
            del os.environ[_MARK_ENV]
    from repro.serve.stats import ServiceStats

    stats = ServiceStats.read(stats_path)
    assert stats.quarantine  # the drained document names the spec
    assert stats.counters["service_quarantined"] == 1


def test_in_worker_exception_is_never_retried():
    spec = dict(SPEC, seed=8999)  # raises deterministically
    with tempfile.TemporaryDirectory() as marks:
        os.environ[_MARK_ENV] = marks
        try:
            config = _config(workers=1, retry=dict(FAST_RETRY))
            with ServiceThread(config, run_fn=crashy_run) as live:
                client = live.client()
                final = client.wait(client.submit({"spec": spec})["job_id"])
                assert final["state"] == "failed"
                result = final["results"][0]
                assert result["status"] == "error"
                assert result["attempts"] == 1
                counters = client.stats()["counters"]
                assert counters.get("service_retries", 0) == 0
        finally:
            del os.environ[_MARK_ENV]
        assert len(os.listdir(marks)) == 1  # exactly one execution
