"""Fleet deadline kills under load, and the stale-reply tag guard.

A deadline kill is asynchronous to the worker: the reaper may have
already read a result the worker sent in its final instant, or a
pre-kill reply may surface on a connection snapshot taken before the
kill.  The tag guard in ``_handle_message`` is what keeps such a stale
reply from resolving the *next* job's future with the wrong payload —
these tests pin both the happy deadline path (kill, typed timeout
result, respawn, service keeps going) and the guard itself.
"""

import time
from concurrent.futures import Future

import pytest

from repro.harness.pool import RunSpec
from repro.serve.fleet import FleetResult, WorkerFleet

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def sleepy_run(spec, trace=False):
    """Sleep ``seed`` ms, then echo the label (module-level for fork)."""
    time.sleep(spec.seed / 1000.0)
    return spec.label(), None


def _spec(seed: int) -> RunSpec:
    return RunSpec(
        framework="atos-standard-persistent",
        app="bfs",
        dataset="hollywood-2009",
        machine="daisy",
        n_gpus=1,
        seed=seed,
    )


def test_deadline_kill_under_load_then_recovers():
    fleet = WorkerFleet(workers=2, run_fn=sleepy_run, timeout_s=0.3)
    try:
        # One cell that must die at its deadline, one that must not:
        # the kill must be surgical under concurrent load.
        doomed = fleet.submit(_spec(seed=5000))
        healthy = fleet.submit(_spec(seed=10))
        ok = healthy.result(timeout=30)
        assert ok.cell.status == "ok"
        dead = doomed.result(timeout=30)
        assert dead.cell.status == "timeout"
        assert dead.failure is None  # deadline, not crash: typed apart
        deadline = time.monotonic() + 10.0
        while fleet.respawns < 1 and time.monotonic() < deadline:
            time.sleep(0.02)  # respawn lands just after the future
        assert fleet.respawns == 1
        # The replacement worker serves new work immediately.
        again = fleet.submit(_spec(seed=10)).result(timeout=30)
        assert again.cell.status == "ok"
    finally:
        fleet.drain(grace_s=5.0)


def test_stale_reply_tag_mismatch_is_dropped():
    fleet = WorkerFleet(workers=1, run_fn=sleepy_run, timeout_s=None)
    try:
        worker = next(iter(fleet._workers.values()))
        # A real job is in flight with the current tag ...
        future = fleet.submit(_spec(seed=300))
        with fleet._lock:
            live_tag = worker.job[0]
        # ... when a reply bearing a *pre-kill* tag surfaces.  The
        # guard must drop it without resolving the live future.
        fleet._handle_message(
            worker, (live_tag - 1, "ok", "stale payload", 0.0, None)
        )
        assert not future.done()
        # The guard cleared the job slot (the kill path owns it), so
        # the real reply that follows is itself treated as stale —
        # dropped, never crossed onto the wrong future.
        stale_real = worker.conn.recv()
        fleet._handle_message(worker, stale_real)
        assert not future.done()
    finally:
        fleet.kill()


def test_reply_after_death_does_not_resolve_twice():
    # The death path resolves the future with status "crashed"; a
    # stale message handled afterwards must be a no-op (job is None),
    # not an InvalidStateError on the already-resolved future.
    fleet = WorkerFleet(workers=1, run_fn=sleepy_run, timeout_s=None)
    try:
        worker = next(iter(fleet._workers.values()))
        future: Future[FleetResult] = fleet.submit(_spec(seed=2000))
        worker.process.kill()  # hard death mid-job -> pipe EOF
        outcome = future.result(timeout=30)
        assert outcome.cell.status == "crashed"
        assert outcome.failure is not None
        assert outcome.failure.spec_key.startswith(
            "atos-standard-persistent:bfs:"
        )
        fleet._handle_message(
            worker, (1, "ok", "ghost payload", 0.0, None)
        )
        assert future.result(timeout=1).cell.status == "crashed"
    finally:
        fleet.kill()
