"""Chaos harness: validated cells, grid verdicts, zero-fault inertness."""

import pytest

from repro.harness.chaos import (
    CHAOS_VARIANTS,
    ChaosSpec,
    chaos_grid,
    render_chaos,
    run_chaos_cell,
    trace_digest_for,
    verify_inert,
)
from repro.faults import FaultPlan


def test_chaos_spec_validation():
    with pytest.raises(ValueError):
        ChaosSpec(app="sssp", variant="standard-persistent", drop_rate=0.0)
    with pytest.raises(ValueError):
        ChaosSpec(app="bfs", variant="no-such-queue", drop_rate=0.0)


def test_chaos_spec_label_and_plan():
    spec = ChaosSpec(app="bfs", variant="priority-discrete",
                     drop_rate=0.1, seed=3)
    assert "bfs" in spec.label() and "drop0.1" in spec.label()
    plan = spec.plan()
    assert plan.seed == 3 and plan.drop_rate == 0.1 and plan.active


@pytest.mark.parametrize("variant", sorted(CHAOS_VARIANTS))
def test_bfs_cell_survives_ten_percent_drops(variant):
    cell = run_chaos_cell(
        ChaosSpec(app="bfs", variant=variant, drop_rate=0.10, seed=0)
    )
    assert cell.ok, cell.error
    # Whenever a message was lost, the delivery layer recovered it.
    if cell.faults.get("fault_dropped", 0):
        assert cell.faults.get("transport_retransmits", 0) > 0
    assert cell.faults["transport_sends"] == (
        cell.faults["transport_acks_received"]
    )


def test_pagerank_cell_survives_drops():
    cell = run_chaos_cell(
        ChaosSpec(app="pagerank", variant="standard-persistent",
                  drop_rate=0.10, seed=0)
    )
    assert cell.ok, cell.error
    assert cell.faults.get("fault_dropped", 0) > 0


def test_grid_renders_verdicts():
    cells = chaos_grid(drop_rates=(0.0, 0.1), apps=("bfs",),
                       variants=("standard-persistent",), seed=0)
    assert all(cell.ok for cell in cells)
    text = render_chaos(cells)
    assert "pass" in text and "FAIL" not in text


# ----------------------------------------------------------- inertness
def test_zero_fault_plan_is_trace_identical_to_none():
    spec = ChaosSpec(app="bfs", variant="standard-persistent",
                     drop_rate=0.0, seed=0)
    baseline = trace_digest_for(spec, None)
    inert = trace_digest_for(spec, FaultPlan(seed=99))
    assert baseline == inert


def test_verify_inert_passes():
    assert verify_inert(seed=0, apps=("bfs",))


def test_active_plan_changes_the_trace():
    spec = ChaosSpec(app="bfs", variant="standard-persistent",
                     drop_rate=0.0, seed=0)
    baseline = trace_digest_for(spec, None)
    faulty = trace_digest_for(
        spec, FaultPlan(seed=0, drop_rate=0.2, duplicate_rate=0.1)
    )
    assert baseline[0] != faulty[0]
