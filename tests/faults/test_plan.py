"""FaultPlan: determinism, stream independence, validation, windows."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    PartitionWindow,
    StallEvent,
    StragglerWindow,
)
from repro.faults.plan import uniform


# ----------------------------------------------------------- uniform
def test_uniform_is_deterministic_and_in_range():
    a = uniform(7, 1, 2, 3)
    b = uniform(7, 1, 2, 3)
    assert a == b
    assert 0.0 <= a < 1.0
    assert uniform(8, 1, 2, 3) != a  # seed matters
    assert uniform(7, 1, 2, 4) != a  # key matters


def test_uniform_roughly_uniform():
    draws = [uniform(0, i) for i in range(2000)]
    mean = sum(draws) / len(draws)
    assert 0.45 < mean < 0.55


# ------------------------------------------------------ message fates
def test_message_fate_is_replayable():
    plan = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.1,
                     delay_rate=0.3)
    first = plan.preview(0, 1, 50)
    again = plan.preview(0, 1, 50)
    assert first == again
    # A second identical plan gives the identical schedule.
    clone = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.1,
                      delay_rate=0.3)
    assert clone.preview(0, 1, 50) == first


def test_fault_streams_are_independent():
    # Raising the drop rate must not shift which surviving messages
    # get delayed (a dropped message has no delay, so compare only the
    # messages the noisy plan actually delivers).
    base = FaultPlan(seed=5, delay_rate=0.3)
    noisy = FaultPlan(seed=5, delay_rate=0.3, drop_rate=0.5)
    base_fates = base.preview(1, 0, 200)
    noisy_fates = noisy.preview(1, 0, 200)
    survived = [i for i, f in enumerate(noisy_fates) if not f.dropped]
    assert survived  # the 50% drop plan delivers something
    for i in survived:
        assert noisy_fates[i].extra_delay == base_fates[i].extra_delay


def test_links_have_independent_schedules():
    plan = FaultPlan(seed=1, drop_rate=0.5)
    ab = [f.dropped for f in plan.preview(0, 1, 64)]
    ba = [f.dropped for f in plan.preview(1, 0, 64)]
    assert ab != ba


def test_drop_rate_statistics():
    plan = FaultPlan(seed=11, drop_rate=0.3)
    drops = sum(f.dropped for f in plan.preview(0, 1, 2000))
    assert 0.25 < drops / 2000 < 0.35


def test_clean_fate():
    plan = FaultPlan(seed=0)
    fate = plan.message_fate(0, 1, 0, 0.0)
    assert fate.clean and not fate.dropped and fate.duplicates == 0


# --------------------------------------------------------- validation
@pytest.mark.parametrize("kwargs", [
    {"drop_rate": 1.5},
    {"drop_rate": -0.1},
    {"duplicate_rate": 2.0},
    {"delay_rate": -1.0},
    {"delay_jitter": -5.0},
])
def test_invalid_rates_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FaultPlan(seed=0, **kwargs)


def test_window_validation():
    with pytest.raises(ConfigurationError):
        PartitionWindow(0, 1, start=10.0, end=5.0)
    with pytest.raises(ConfigurationError):
        StragglerWindow(0, start=0.0, end=10.0, factor=0.5)
    with pytest.raises(ConfigurationError):
        StallEvent(0, at=0.0, duration=-1.0)


def test_lists_coerced_to_tuples():
    plan = FaultPlan(
        seed=0,
        partitions=[PartitionWindow(0, 1, 0.0, 5.0)],
        stalls=[StallEvent(0, 1.0, 2.0)],
    )
    assert isinstance(plan.partitions, tuple)
    assert isinstance(plan.stalls, tuple)


# ------------------------------------------------------------- active
def test_inert_plan_is_not_active():
    assert not FaultPlan(seed=42).active
    # delay_rate without jitter can never delay anything.
    assert not FaultPlan(seed=0, delay_rate=0.5, delay_jitter=0.0).active
    assert FaultPlan(seed=0, drop_rate=0.01).active
    assert FaultPlan(seed=0, stalls=(StallEvent(0, 1.0, 2.0),)).active


# ---------------------------------------------------------- partitions
def test_partition_window_drops_everything_inside():
    plan = FaultPlan(seed=0,
                     partitions=(PartitionWindow(0, 1, 10.0, 20.0),))
    assert plan.message_fate(0, 1, 0, 15.0).dropped
    assert not plan.message_fate(0, 1, 0, 5.0).dropped
    assert not plan.message_fate(0, 1, 0, 20.0).dropped  # half-open
    assert not plan.message_fate(1, 0, 0, 15.0).dropped  # other link


def test_partition_wildcards():
    into_pe3 = PartitionWindow(-1, 3, 0.0, 10.0)
    assert into_pe3.covers(0, 3, 5.0)
    assert into_pe3.covers(2, 3, 5.0)
    assert not into_pe3.covers(3, 0, 5.0)


# ------------------------------------------------------------- device
def test_straggler_slowdown_compounds():
    plan = FaultPlan(seed=0, stragglers=(
        StragglerWindow(0, 0.0, 100.0, 2.0),
        StragglerWindow(0, 50.0, 100.0, 3.0),
    ))
    assert plan.slowdown(0, 10.0) == 2.0
    assert plan.slowdown(0, 60.0) == 6.0
    assert plan.slowdown(0, 200.0) == 1.0
    assert plan.slowdown(1, 10.0) == 1.0


def test_describe_mentions_what_is_set():
    text = FaultPlan(seed=9, drop_rate=0.1).describe()
    assert "seed=9" in text and "drop=0.1" in text


# -------------------------------------------------------------- crashes
def test_crash_event_validation():
    from repro.faults import CrashEvent

    with pytest.raises(ConfigurationError):
        CrashEvent(pe=-1, at=5.0)
    with pytest.raises(ConfigurationError):
        CrashEvent(pe=0, at=-1.0)
    assert CrashEvent(pe=0, at=0.0).at == 0.0


def test_crashes_make_a_plan_active_and_described():
    from repro.faults import CrashEvent

    plan = FaultPlan(seed=0, crashes=(CrashEvent(pe=2, at=50.0),))
    assert plan.active
    assert "crashes=1" in plan.describe()


def test_plan_rejects_a_rank_crashing_twice():
    from repro.faults import CrashEvent

    with pytest.raises(ConfigurationError, match="more than once"):
        FaultPlan(seed=0, crashes=(
            CrashEvent(pe=1, at=10.0), CrashEvent(pe=1, at=20.0),
        ))
