"""Loss-safe termination: underflow, ledger leases, reordered delivery.

Satellite coverage for the resilience work: the WorkTracker must fail
loudly (naming its caller) rather than go negative, the InFlightLedger
must hold message tokens until ack, and termination detection must
survive in-flight reordering and duplicate delivery end to end.
"""

import numpy as np
import pytest

from repro.apps import AtosBFS
from repro.apps.validation import reference_bfs
from repro.config import daisy
from repro.errors import SimulationError
from repro.faults import FaultPlan
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.runtime import AtosConfig, AtosExecutor, InFlightLedger, WorkTracker
from repro.sim.core import Environment


# -------------------------------------------------- WorkTracker underflow
def test_remove_underflow_raises_and_names_source():
    tracker = WorkTracker(Environment())
    tracker.add(2)
    with pytest.raises(SimulationError) as exc:
        tracker.remove(3, source="round pe1")
    message = str(exc.value)
    assert "underflow" in message
    assert "round pe1" in message
    # The failed remove must not have corrupted the counter.
    assert tracker.outstanding == 2


def test_remove_underflow_without_source_still_raises():
    tracker = WorkTracker(Environment())
    with pytest.raises(SimulationError, match="underflow"):
        tracker.remove(1)


# ------------------------------------------------------- InFlightLedger
def test_ledger_leases_until_retire():
    tracker = WorkTracker(Environment())
    tracker.add(5)
    ledger = InFlightLedger(tracker)
    ledger.lease(3)
    assert ledger.leased == 3
    assert tracker.outstanding == 5  # leasing does not retire
    ledger.retire(2, source="ack 0->1#0")
    assert ledger.leased == 1
    assert tracker.outstanding == 3
    assert ledger.total_leased == 3 and ledger.total_retired == 2


def test_ledger_rejects_over_retire():
    tracker = WorkTracker(Environment())
    tracker.add(1)
    ledger = InFlightLedger(tracker)
    ledger.lease(1)
    with pytest.raises(SimulationError, match="leased"):
        ledger.retire(2)


def test_tracker_only_drains_after_every_lease_retires():
    env = Environment()
    tracker = WorkTracker(env)
    ledger = InFlightLedger(tracker)
    tracker.add(2)          # one queued task + one in-flight message
    ledger.lease(1)         # the message's token is held
    tracker.remove(1, source="local task")
    assert not tracker.finished  # the lease still holds a token
    ledger.retire(1, source="ack")
    assert tracker.finished


# ----------------------------------------- end-to-end: reorder/duplicate
def _bfs_fixture(n_gpus: int = 4):
    graph = rmat(scale=9, edge_factor=8, seed=31)
    source = largest_component_vertex(graph)
    partition = bfs_grow_partition(graph, n_gpus, seed=0)
    return graph, partition, source, reference_bfs(graph, source)


def _run(plan: FaultPlan, n_gpus: int = 4):
    graph, partition, source, reference = _bfs_fixture(n_gpus)
    app = AtosBFS(graph, partition, source)
    executor = AtosExecutor(
        daisy(n_gpus),
        app,
        AtosConfig(fetch_size=1, use_aggregator=True, batch_size=1 << 12,
                   faults=plan),
    )
    makespan, counters = executor.run()
    return app, executor, reference, counters


def test_termination_under_inflight_reordering():
    # Heavy jitter reorders messages in flight; the run must terminate
    # with the tracker drained and the output still exact.
    app, executor, reference, counters = _run(
        FaultPlan(seed=13, delay_rate=0.9, delay_jitter=200.0)
    )
    assert counters["fault_delayed"] > 0
    assert executor.tracker.finished
    assert executor.tracker.outstanding == 0
    assert executor.ledger.leased == 0
    assert np.array_equal(app.result(), reference)


def test_termination_under_duplicate_delivery():
    # Every message is duplicated in flight; dedup must suppress every
    # copy, the ledger must retire each send exactly once.
    app, executor, reference, counters = _run(
        FaultPlan(seed=13, duplicate_rate=1.0)
    )
    assert counters["fault_duplicated"] > 0
    # Every data message was duplicated in flight, so each send had
    # exactly one copy suppressed; duplicated acks surface as stale.
    assert counters["transport_duplicates_suppressed"] == (
        counters["transport_sends"]
    )
    assert counters["transport_stale_acks"] > 0
    assert executor.tracker.finished
    assert executor.ledger.leased == 0
    assert executor.ledger.total_retired == executor.ledger.total_leased
    assert np.array_equal(app.result(), reference)


def test_termination_under_drop_and_reorder_combined():
    app, executor, reference, counters = _run(
        FaultPlan(seed=4, drop_rate=0.15, duplicate_rate=0.1,
                  delay_rate=0.5, delay_jitter=100.0)
    )
    assert counters["transport_retransmits"] > 0
    assert executor.tracker.finished
    assert executor.ledger.leased == 0
    assert np.array_equal(app.result(), reference)


# ------------------------------------------------- checkpoint support
def test_tracker_snapshot_restore_roundtrip():
    from repro.runtime import TrackerSnapshot

    tracker = WorkTracker(Environment())
    tracker.add(7)
    tracker.remove(2)
    snap = tracker.snapshot()
    assert snap == TrackerSnapshot(outstanding=5, total_added=7)
    # The run races ahead, then recovery rolls it back.
    tracker.add(4)
    tracker.remove(6)
    tracker.restore(snap)
    assert tracker.outstanding == 5
    assert tracker.total_added == 7
    # The restored tracker still terminates normally.
    tracker.remove(5)
    assert tracker.finished


def test_tracker_restore_after_termination_raises():
    from repro.errors import RecoveryError

    tracker = WorkTracker(Environment())
    tracker.add(1)
    snap = tracker.snapshot()
    tracker.remove(1)
    assert tracker.finished
    with pytest.raises(RecoveryError, match="after termination"):
        tracker.restore(snap)


def test_tracker_restore_rejects_empty_snapshot():
    from repro.errors import RecoveryError
    from repro.runtime import TrackerSnapshot

    tracker = WorkTracker(Environment())
    tracker.add(1)
    with pytest.raises(RecoveryError, match="outstanding"):
        tracker.restore(TrackerSnapshot(outstanding=0, total_added=3))


def test_ledger_reclaim_bypasses_tracker():
    tracker = WorkTracker(Environment())
    tracker.add(5)
    ledger = InFlightLedger(tracker)
    ledger.lease(3)
    ledger.reclaim(2, source="reclaim 0->1#0")
    assert ledger.leased == 1
    # Reclaim must NOT remove tracker tokens (restore re-derives them).
    assert tracker.outstanding == 5
    with pytest.raises(SimulationError, match="reclaiming"):
        ledger.reclaim(2)
