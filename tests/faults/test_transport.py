"""ReliableTransport: ack/retransmit/dedup over a faulty fabric.

These tests drive the transport directly over a real
:class:`NetworkFabric` with a scripted fault injector (deterministic
fates per wire message, in fabric send order), so each resilience
mechanism is exercised in isolation: retransmission after a drop,
duplicate suppression, re-acking, stale acks, and loud budget
exhaustion.
"""

import pytest

from repro.config import daisy
from repro.errors import ConfigurationError, SimulationError
from repro.faults import ReliableTransport, RetryPolicy
from repro.faults.plan import MessageFate
from repro.interconnect.transfer import NetworkFabric
from repro.metrics.counters import Counters
from repro.sim.core import Environment


class ScriptedInjector:
    """Returns scripted fates for the first N fabric sends, then clean.

    The fabric consults the injector for *every* wire message — data,
    retransmissions, and acks alike, in send order — which lets a test
    drop exactly the k-th thing that hits the wire.
    """

    def __init__(self, fates):
        self.fates = list(fates)
        self.calls = 0

    def fate(self, src, dst, now):
        self.calls += 1
        if self.fates:
            return self.fates.pop(0)
        return MessageFate()


class RecordingLedger:
    """Duck-typed InFlightLedger that just records lease/retire calls."""

    def __init__(self):
        self.leased = 0
        self.retired = 0
        self.reclaimed = 0

    def lease(self, tokens):
        self.leased += tokens

    def retire(self, tokens, source=""):
        assert tokens <= self.leased - self.retired
        self.retired += tokens

    def reclaim(self, tokens, source=""):
        assert tokens <= self.leased - self.retired - self.reclaimed
        self.reclaimed += tokens


def _transport(fates, policy=None):
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    fabric.fault_injector = ScriptedInjector(fates)
    ledger = RecordingLedger()
    delivered = []
    counters = Counters()
    transport = ReliableTransport(
        env,
        fabric,
        ledger,
        lambda dst, payload: delivered.append((dst, payload)),
        policy=policy,
        counters=counters,
    )
    return env, transport, ledger, delivered, counters


DROP = MessageFate(dropped=True)
CLEAN = MessageFate()
DUP = MessageFate(duplicates=1)


def test_clean_send_delivers_once_and_retires_on_ack():
    env, transport, ledger, delivered, counters = _transport([])
    transport.send(0, 1, 64, "payload", tokens=3)
    assert ledger.leased == 3 and ledger.retired == 0
    env.run()
    assert delivered == [(1, "payload")]
    assert ledger.retired == 3
    assert transport.quiescent
    assert counters["transport_sends"] == 1
    assert counters["transport_retransmits"] == 0
    assert counters["transport_acks_received"] == 1


def test_dropped_data_is_retransmitted_and_delivered_once():
    # Wire order: [data (dropped)], timer fires, [data, ack] clean.
    env, transport, ledger, delivered, counters = _transport([DROP])
    transport.send(0, 1, 64, "p", tokens=1)
    env.run()
    assert delivered == [(1, "p")]
    assert counters["transport_retransmits"] == 1
    assert counters["transport_duplicates_suppressed"] == 0
    assert ledger.retired == 1
    assert transport.quiescent


def test_dropped_ack_causes_reack_and_suppressed_duplicate():
    # Wire order: data (clean), ack (dropped); retransmit -> data again
    # (duplicate application suppressed, but re-acked), ack clean.
    env, transport, ledger, delivered, counters = _transport([CLEAN, DROP])
    transport.send(0, 1, 64, "p", tokens=2)
    env.run()
    assert delivered == [(1, "p")]  # applied exactly once
    assert counters["transport_retransmits"] == 1
    assert counters["transport_duplicates_suppressed"] == 1
    assert counters["transport_acks_sent"] == 2
    assert ledger.retired == 2
    assert transport.quiescent


def test_fabric_duplicate_is_suppressed_and_acked_twice():
    # The data packet is duplicated in flight: both copies arrive, one
    # application, two acks (the second is stale at the sender).
    env, transport, ledger, delivered, counters = _transport([DUP])
    transport.send(0, 1, 64, "p", tokens=1)
    env.run()
    assert delivered == [(1, "p")]
    assert counters["transport_duplicates_suppressed"] == 1
    assert counters["transport_acks_sent"] == 2
    assert counters["transport_stale_acks"] == 1
    assert ledger.retired == 1
    assert transport.quiescent


def test_sequence_numbers_are_per_link():
    env, transport, ledger, delivered, _ = _transport([])
    transport.send(0, 1, 8, "a", tokens=1)
    transport.send(1, 0, 8, "b", tokens=1)
    transport.send(0, 1, 8, "c", tokens=1)
    env.run()
    assert sorted(p for _, p in delivered) == ["a", "b", "c"]
    assert transport._next_seq == {(0, 1): 2, (1, 0): 1}


def test_budget_exhaustion_raises_loudly():
    policy = RetryPolicy(timeout=10.0, budget=2)
    # Drop the data packet on every transmission (3 = 1 + budget).
    env, transport, ledger, delivered, counters = _transport(
        [DROP, DROP, DROP], policy=policy
    )
    transport.send(0, 1, 64, "p", tokens=1)
    with pytest.raises(SimulationError, match="retry budget exhausted"):
        env.run()
    assert delivered == []


def test_backoff_deadlines():
    policy = RetryPolicy(timeout=50.0, backoff=2.0, max_timeout=120.0)
    assert policy.deadline(0) == 50.0
    assert policy.deadline(1) == 100.0
    assert policy.deadline(2) == 120.0  # capped


@pytest.mark.parametrize("kwargs", [
    {"timeout": 0.0},
    {"backoff": 0.5},
    {"max_timeout": 1.0},
    {"budget": -1},
    {"ack_bytes": 0},
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


# ------------------------------------------- recovery-facing features
def test_budget_exhaustion_error_is_typed():
    from repro.errors import RetryBudgetExhausted

    policy = RetryPolicy(timeout=10.0, budget=1)
    env, transport, ledger, delivered, counters = _transport(
        [DROP, DROP], policy=policy
    )
    transport.send(0, 1, 64, "p", tokens=1)
    with pytest.raises(RetryBudgetExhausted) as exc:
        env.run()
    error = exc.value
    assert (error.src, error.dst, error.seq) == (0, 1, 0)
    assert error.attempts == 2  # original + one retransmission
    assert isinstance(error, SimulationError)


def test_on_exhausted_hook_absorbs_instead_of_raising():
    from repro.errors import RetryBudgetExhausted

    policy = RetryPolicy(timeout=10.0, budget=0)
    env, transport, ledger, delivered, counters = _transport(
        [DROP], policy=policy
    )
    escalated = []
    transport.on_exhausted = escalated.append
    transport.send(0, 1, 64, "p", tokens=1)
    env.run()  # must not raise
    assert len(escalated) == 1
    assert isinstance(escalated[0], RetryBudgetExhausted)
    # The lease is kept: only recovery may reclaim it.
    assert ledger.retired == 0


def test_dead_receiver_neither_applies_nor_acks():
    policy = RetryPolicy(timeout=10.0, budget=1)
    env, transport, ledger, delivered, counters = _transport(
        [], policy=policy
    )
    transport.alive_fn = lambda pe, now: pe != 1
    transport.on_exhausted = lambda error: None
    transport.send(0, 1, 64, "p", tokens=1)
    env.run()
    assert delivered == []
    assert counters["transport_dead_receiver_drops"] >= 1
    assert counters["transport_acks_sent"] == 0


def test_dead_sender_does_not_retransmit():
    policy = RetryPolicy(timeout=10.0, budget=5)
    env, transport, ledger, delivered, counters = _transport(
        [DROP], policy=policy
    )
    transport.alive_fn = lambda pe, now: pe != 0
    transport.send(0, 1, 64, "p", tokens=1)
    env.run()
    assert delivered == []
    assert counters["transport_retransmits"] == 0
    assert counters["transport_dead_sender_timeouts"] == 1
    assert not transport.quiescent  # lease held for recovery to reclaim


def test_stale_incarnation_packet_is_fenced():
    env, transport, ledger, delivered, counters = _transport([])
    transport.send(0, 1, 64, "p", tokens=1)
    # Recovery happens while the packet is in flight.
    transport.reclaim_pending()
    transport.incarnation += 1
    env.run()
    assert delivered == []
    assert counters["transport_stale_incarnation_drops"] == 1
    assert counters["transport_acks_sent"] == 0
    assert transport.quiescent


def test_reclaim_pending_releases_every_lease():
    env, transport, ledger, delivered, counters = _transport(
        [DROP, DROP, DROP, DROP, DROP, DROP], policy=RetryPolicy(
            timeout=1e6, max_timeout=1e6, budget=1
        )
    )
    transport.send(0, 1, 64, "a", tokens=2)
    transport.send(0, 1, 64, "b", tokens=3)
    assert transport.pending_messages == 2
    reclaimed = transport.reclaim_pending()
    assert reclaimed == 5
    assert ledger.leased - ledger.retired - ledger.reclaimed == 0
    assert transport.quiescent
