"""Injectors: per-link schedules, device slowdowns, counter accounting."""

from repro.faults import (
    DeviceFaultInjector,
    FaultPlan,
    LinkFaultInjector,
    StallEvent,
    StragglerWindow,
)
from repro.metrics.counters import Counters


def test_link_injector_walks_the_plan_schedule():
    plan = FaultPlan(seed=2, drop_rate=0.4, duplicate_rate=0.2)
    injector = LinkFaultInjector(plan, counters=Counters())
    observed = [injector.fate(0, 1, now=0.0) for _ in range(32)]
    assert observed == plan.preview(0, 1, 32)


def test_link_injector_keeps_per_link_indices():
    plan = FaultPlan(seed=2, drop_rate=0.5)
    injector = LinkFaultInjector(plan)
    # Interleave two links; each must still see its own schedule.
    a = [injector.fate(0, 1, 0.0) for _ in range(8)]
    b = [injector.fate(1, 0, 0.0) for _ in range(8)]
    assert a == plan.preview(0, 1, 8)
    assert b == plan.preview(1, 0, 8)


def test_link_injector_counts_faults():
    counters = Counters()
    plan = FaultPlan(seed=7, drop_rate=0.5, duplicate_rate=0.5,
                     delay_rate=0.5)
    injector = LinkFaultInjector(plan, counters=counters)
    fates = [injector.fate(0, 1, 0.0) for _ in range(200)]
    assert counters["fault_dropped"] == sum(f.dropped for f in fates)
    assert counters["fault_duplicated"] == sum(f.duplicates for f in fates)
    assert counters["fault_delayed"] == sum(
        1 for f in fates if f.extra_delay
    )
    assert counters["fault_dropped"] > 0
    assert counters["fault_duplicated"] > 0
    assert counters["fault_delayed"] > 0


def test_device_injector_round_duration_stretches_and_stalls():
    counters = Counters()
    plan = FaultPlan(
        seed=0,
        stragglers=(StragglerWindow(1, 0.0, 100.0, 4.0),),
        stalls=(StallEvent(1, 10.0, 7.0),),
    )
    injector = DeviceFaultInjector(plan, counters=counters)
    # Outside any window: identity.
    assert injector.round_duration(0, 50.0, 2.0) == 2.0
    # Inside the straggler window, before the stall is due.
    assert injector.round_duration(1, 5.0, 2.0) == 8.0
    # Stall due at t=10: consumed exactly once.
    assert injector.round_duration(1, 20.0, 2.0) == 8.0 + 7.0
    assert injector.round_duration(1, 30.0, 2.0) == 8.0
    assert counters["fault_straggler_rounds"] == 3
    assert counters["fault_stalls"] == 1
    assert counters["fault_stall_time_us"] == 7.0


def test_device_injector_consumes_multiple_due_stalls():
    plan = FaultPlan(seed=0, stalls=(
        StallEvent(0, 1.0, 2.0),
        StallEvent(0, 3.0, 5.0),
        StallEvent(0, 500.0, 11.0),
    ))
    injector = DeviceFaultInjector(plan)
    assert injector.take_stall(0, now=10.0) == 7.0  # both due stalls
    assert injector.take_stall(0, now=10.0) == 0.0  # consumed
    assert injector.take_stall(0, now=600.0) == 11.0
    assert injector.take_stall(1, now=600.0) == 0.0


def test_device_injector_crash_schedule():
    import math

    from repro.faults import CrashEvent

    plan = FaultPlan(seed=0, crashes=(
        CrashEvent(pe=1, at=30.0), CrashEvent(pe=3, at=90.0),
    ))
    injector = DeviceFaultInjector(plan)
    assert injector.crash_time(1) == 30.0
    assert injector.crash_time(0) == math.inf
    assert not injector.is_crashed(1, 29.9)
    assert injector.is_crashed(1, 30.0)  # crash instant inclusive
    assert injector.is_crashed(3, 90.0)
    assert not injector.is_crashed(0, 1e9)
