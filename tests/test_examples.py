"""Smoke tests: the shipped examples must run and self-validate.

Each example asserts its own correctness internally; here we execute
the fast ones in-process so a broken public API surfaces in the test
suite, not when a user first tries the README.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "OK: simulated BFS matches the serial reference" in out


def test_custom_application(capsys):
    out = _run_example("custom_application.py", capsys)
    assert "matches networkx" in out


def test_road_network_reachability(capsys):
    out = _run_example("road_network_reachability.py", capsys)
    assert "atos-persistent < groute < gunrock" in out


def test_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        source = script.read_text()
        assert source.startswith('#!/usr/bin/env python\n"""'), script.name
        assert "Run:" in source, script.name
