"""Tests for simulated device atomics (exact vs relaxed semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    atomic_add_exact,
    atomic_add_relaxed,
    atomic_min_exact,
    atomic_min_relaxed,
    duplicate_conflicts,
)


def test_atomic_min_exact_no_duplicates():
    arr = np.array([10, 10, 10])
    old = atomic_min_exact(arr, np.array([0, 2]), np.array([3, 15]))
    assert list(old) == [10, 10]
    assert list(arr) == [3, 10, 10]  # 15 did not lower arr[2]


def test_atomic_min_exact_duplicates_serialize():
    arr = np.array([10])
    old = atomic_min_exact(
        arr, np.array([0, 0, 0]), np.array([7, 5, 6])
    )
    # Sequential: op0 sees 10, op1 sees 7, op2 sees 5.
    assert list(old) == [10, 7, 5]
    assert arr[0] == 5


def test_atomic_min_relaxed_duplicates_all_see_prebatch():
    arr = np.array([10])
    old = atomic_min_relaxed(
        arr, np.array([0, 0, 0]), np.array([7, 5, 6])
    )
    assert list(old) == [10, 10, 10]  # over-reports success
    assert arr[0] == 5  # final value still exact


def test_atomic_add_exact_running_sums():
    arr = np.array([100])
    old = atomic_add_exact(arr, np.array([0, 0, 0]), np.array([1, 2, 3]))
    assert list(old) == [100, 101, 103]
    assert arr[0] == 106


def test_atomic_add_relaxed_sum_still_exact():
    arr = np.array([100])
    old = atomic_add_relaxed(arr, np.array([0, 0]), np.array([5, 5]))
    assert list(old) == [100, 100]
    assert arr[0] == 110


def test_empty_batches():
    arr = np.array([1, 2, 3])
    for fn in (atomic_min_exact, atomic_min_relaxed,
               atomic_add_exact, atomic_add_relaxed):
        old = fn(arr, np.array([], dtype=np.int64), np.array([]))
        assert len(old) == 0
    assert list(arr) == [1, 2, 3]


def test_index_out_of_range():
    arr = np.zeros(3)
    with pytest.raises(IndexError):
        atomic_min_exact(arr, np.array([3]), np.array([1.0]))
    with pytest.raises(IndexError):
        atomic_add_relaxed(arr, np.array([-1]), np.array([1.0]))


def test_shape_mismatch():
    arr = np.zeros(3)
    with pytest.raises(ValueError):
        atomic_min_relaxed(arr, np.array([0, 1]), np.array([1.0]))


def test_duplicate_conflicts():
    assert duplicate_conflicts(np.array([1, 2, 3])) == 0
    assert duplicate_conflicts(np.array([1, 1, 1, 2])) == 2
    assert duplicate_conflicts(np.array([])) == 0


# ----------------------------------------------------------- properties
batches = st.integers(1, 12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(-50, 50)),
            max_size=40,
        ),
    )
)


def _reference_min(arr, ops):
    arr = arr.copy()
    old = []
    for i, v in ops:
        old.append(arr[i])
        arr[i] = min(arr[i], v)
    return arr, old


def _reference_add(arr, ops):
    arr = arr.copy()
    old = []
    for i, v in ops:
        old.append(arr[i])
        arr[i] = arr[i] + v
    return arr, old


@given(batches)
@settings(max_examples=100)
def test_property_min_exact_matches_sequential_loop(data):
    n, ops = data
    arr0 = np.arange(n) * 3 - 5
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=arr0.dtype)
    expected_arr, expected_old = _reference_min(arr0, ops)
    arr = arr0.copy()
    old = atomic_min_exact(arr, idx, vals)
    assert np.array_equal(arr, expected_arr)
    assert list(old) == expected_old


@given(batches)
@settings(max_examples=100)
def test_property_add_exact_matches_sequential_loop(data):
    n, ops = data
    arr0 = np.arange(n, dtype=np.int64)
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=np.int64)
    expected_arr, expected_old = _reference_add(arr0, ops)
    arr = arr0.copy()
    old = atomic_add_exact(arr, idx, vals)
    assert np.array_equal(arr, expected_arr)
    assert list(old) == expected_old


@given(batches)
@settings(max_examples=100)
def test_property_relaxed_and_exact_agree_on_final_array(data):
    n, ops = data
    arr0 = np.arange(n, dtype=np.int64)
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=np.int64)
    a, b = arr0.copy(), arr0.copy()
    atomic_min_exact(a, idx, vals)
    atomic_min_relaxed(b, idx, vals)
    assert np.array_equal(a, b)
    a, b = arr0.copy(), arr0.copy()
    atomic_add_exact(a, idx, vals)
    atomic_add_relaxed(b, idx, vals)
    assert np.array_equal(a, b)


# Heavy-duplicate batches: few addresses, many ops each, so the
# segmented-scan path runs deep duplication chains (the regime the
# vectorization exists for).
heavy_batches = st.integers(1, 3).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(-50, 50)),
            min_size=20,
            max_size=120,
        ),
    )
)


@given(heavy_batches)
@settings(max_examples=60, deadline=None)
def test_property_exact_heavy_duplicates_int(data):
    n, ops = data
    arr0 = np.arange(n, dtype=np.int64) * 7 - 3
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=np.int64)
    for fn, ref in (
        (atomic_min_exact, _reference_min),
        (atomic_add_exact, _reference_add),
    ):
        expected_arr, expected_old = ref(arr0, ops)
        arr = arr0.copy()
        old = fn(arr, idx, vals)
        assert np.array_equal(arr, expected_arr)
        assert list(old) == expected_old


@given(heavy_batches)
@settings(max_examples=60, deadline=None)
def test_property_exact_heavy_duplicates_float(data):
    # Float min is order-insensitive and must match the sequential
    # loop bit-for-bit; float add may only differ by summation
    # rounding, so it is compared to tolerance.
    n, ops = data
    arr0 = (np.arange(n, dtype=np.float64) * 7 - 3) / 2
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=np.float64) / 4
    expected_arr, expected_old = _reference_min(arr0, [
        (i, v) for (i, _), v in zip(ops, vals)
    ])
    arr = arr0.copy()
    old = atomic_min_exact(arr, idx, vals)
    assert np.array_equal(arr, expected_arr)
    assert list(old) == expected_old

    expected_arr, expected_old = _reference_add(arr0, [
        (i, v) for (i, _), v in zip(ops, vals)
    ])
    arr = arr0.copy()
    old = atomic_add_exact(arr, idx, vals)
    assert np.allclose(arr, expected_arr)
    assert np.allclose(old, expected_old)


@given(batches)
@settings(max_examples=60)
def test_property_relaxed_min_old_upper_bounds_exact(data):
    # Relaxed reads pre-batch values, which are >= any serialized view.
    n, ops = data
    arr0 = np.arange(n, dtype=np.int64)
    idx = np.array([o[0] for o in ops], dtype=np.int64)
    vals = np.array([o[1] for o in ops], dtype=np.int64)
    a, b = arr0.copy(), arr0.copy()
    exact_old = atomic_min_exact(a, idx, vals)
    relaxed_old = atomic_min_relaxed(b, idx, vals)
    assert np.all(relaxed_old >= exact_old)
