"""Tests for occupancy, worker sizing, kernel strategies, memory model."""

import pytest

from repro.config import CostModel, V100_32GB
from repro.errors import ConfigurationError
from repro.gpu import (
    CTA,
    KernelModel,
    KernelStrategy,
    MemoryModel,
    WorkerConfig,
    resident_ctas,
    resident_workers,
)


# --------------------------------------------------------------- occupancy
def test_occupancy_thread_limited():
    occ = resident_ctas(V100_32GB, threads_per_cta=512,
                        registers_per_thread=32)
    # 2048 threads/SM / 512 = 4 CTAs/SM; registers allow exactly 4 too;
    # threads is reported as the binding factor (tie broken by order).
    assert occ.ctas_per_sm == 4
    assert occ.total_ctas == 4 * 80
    assert occ.total_threads == 4 * 80 * 512


def test_occupancy_register_limited():
    occ = resident_ctas(V100_32GB, threads_per_cta=512,
                        registers_per_thread=64)
    # 65536 / (64*512) = 2 CTAs/SM.
    assert occ.ctas_per_sm == 2
    assert occ.limiting_factor == "registers"


def test_occupancy_shared_memory_limited():
    occ = resident_ctas(V100_32GB, threads_per_cta=128,
                        registers_per_thread=16,
                        shared_mem_per_cta=48 * 1024)
    assert occ.ctas_per_sm == 2
    assert occ.limiting_factor == "shared_memory"


def test_occupancy_cta_slot_limited():
    occ = resident_ctas(V100_32GB, threads_per_cta=32,
                        registers_per_thread=16)
    # 2048/32 = 64 > 32 CTA slots.
    assert occ.ctas_per_sm == 32
    assert occ.limiting_factor == "cta_slots"


def test_occupancy_validation():
    with pytest.raises(ConfigurationError):
        resident_ctas(V100_32GB, threads_per_cta=0)
    with pytest.raises(ConfigurationError):
        resident_ctas(V100_32GB, threads_per_cta=4096)
    with pytest.raises(ConfigurationError):
        resident_ctas(V100_32GB, threads_per_cta=512,
                      shared_mem_per_cta=1 << 20)


# ----------------------------------------------------------------- workers
def test_resident_workers_kinds():
    ctas = resident_workers(V100_32GB, "cta", cta_threads=512)
    warps = resident_workers(V100_32GB, "warp", cta_threads=512)
    threads = resident_workers(V100_32GB, "thread", cta_threads=512)
    assert threads == 32 * warps
    assert warps == 16 * ctas
    with pytest.raises(ConfigurationError):
        resident_workers(V100_32GB, "block")


def test_worker_config_defaults():
    assert CTA.kind == "cta"
    assert CTA.cta_threads == 512  # the paper's evaluated size
    assert CTA.threads_per_worker == 512
    assert WorkerConfig(kind="warp").threads_per_worker == 32
    assert WorkerConfig(kind="thread").threads_per_worker == 1


def test_worker_tasks_per_round():
    w = WorkerConfig(kind="cta", cta_threads=512, fetch_size=4)
    assert w.tasks_per_round(V100_32GB) == w.n_workers(V100_32GB) * 4


def test_worker_config_validation():
    with pytest.raises(ConfigurationError):
        WorkerConfig(kind="bogus")
    with pytest.raises(ConfigurationError):
        WorkerConfig(kind="cta", fetch_size=0)
    with pytest.raises(ConfigurationError):
        WorkerConfig(kind="warp", cta_threads=100)


# ----------------------------------------------------------------- kernels
def test_discrete_kernel_pays_per_round():
    cost = CostModel()
    model = KernelModel(KernelStrategy.DISCRETE, cost)
    assert model.round_overhead() == (
        cost.kernel_launch_overhead + cost.cpu_sync_overhead
    )
    assert model.teardown_overhead() == 0.0


def test_persistent_kernel_pays_once():
    cost = CostModel()
    model = KernelModel(KernelStrategy.PERSISTENT, cost)
    assert model.round_overhead() == 0.0
    assert model.startup_overhead() == cost.kernel_launch_overhead
    assert model.teardown_overhead() == cost.cpu_sync_overhead


def test_persistent_beats_discrete_over_many_rounds():
    cost = CostModel()
    persistent = KernelModel(KernelStrategy.PERSISTENT, cost)
    discrete = KernelModel(KernelStrategy.DISCRETE, cost)

    def total(model, rounds):
        return (
            model.startup_overhead()
            + rounds * model.round_overhead()
            + model.teardown_overhead()
        )

    assert total(persistent, 1000) < total(discrete, 1000) / 50


# ------------------------------------------------------------ memory model
def test_memory_edge_batch_time_scales():
    mm = MemoryModel(V100_32GB, CostModel())
    t1 = mm.edge_batch_time(1000)
    t2 = mm.edge_batch_time(2000)
    assert t2 == pytest.approx(2 * t1)
    assert mm.edge_batch_time(0) == 0.0


def test_memory_conflicts_add_cost_when_penalty_enabled():
    # Default penalty is 0 (folded into edge_throughput); the knob
    # exists for the contention ablation.
    from dataclasses import replace

    spec = replace(V100_32GB, atomic_conflict_penalty=0.004)
    mm = MemoryModel(spec, CostModel())
    assert mm.edge_batch_time(1000, n_conflicts=100) > mm.edge_batch_time(1000)
    mm_default = MemoryModel(V100_32GB, CostModel())
    assert mm_default.edge_batch_time(1000, n_conflicts=100) == (
        mm_default.edge_batch_time(1000)
    )


def test_memory_model_validation():
    mm = MemoryModel(V100_32GB, CostModel())
    with pytest.raises(ValueError):
        mm.edge_batch_time(-1)
    with pytest.raises(ValueError):
        mm.queue_ops_time(-1)
    with pytest.raises(ValueError):
        mm.bulk_copy_time(-5)


def test_memory_bulk_copy():
    mm = MemoryModel(V100_32GB, CostModel())
    assert mm.bulk_copy_time(V100_32GB.memory_bandwidth) == pytest.approx(1.0)
