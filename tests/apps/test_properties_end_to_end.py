"""Property-based end-to-end tests: random graphs, partitions, and
executor configurations must always produce reference-equal results.

These are the highest-value invariants in the repository: the entire
stack (DES engine, fabric, queues, aggregator, termination, app logic)
sits between the random input and the asserted output.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import daisy, summit_ib
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    CSRGraph,
    bfs_grow_partition,
    largest_component_vertex,
    random_partition,
)
from repro.apps import (
    AtosBFS,
    AtosPageRank,
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.runtime import AtosConfig, AtosExecutor

# Random small graphs: n in [4, 60], arbitrary edges, symmetrized so
# sources reach a reasonable fraction.
graphs = st.integers(4, 60).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n // 2,
            max_size=4 * n,
        ),
    )
)

run_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(n, edges):
    return CSRGraph.from_edges(
        [e[0] for e in edges], [e[1] for e in edges], n
    ).symmetrized()


@given(graphs, st.integers(1, 4), st.booleans(), st.booleans())
@run_settings
def test_property_bfs_always_matches_reference(
    data, n_gpus, priority, discrete
):
    n, edges = data
    graph = _build(n, edges)
    if graph.n_edges == 0:
        return
    source = largest_component_vertex(graph)
    partition = random_partition(graph, n_gpus, seed=n)
    config = AtosConfig(
        kernel=(
            KernelStrategy.DISCRETE if discrete else KernelStrategy.PERSISTENT
        ),
        priority=priority,
        fetch_size=1,
    )
    app = AtosBFS(graph, partition, source)
    AtosExecutor(daisy(min(n_gpus, 4)), app, config).run()
    assert np.array_equal(app.result(), reference_bfs(graph, source))


@given(graphs, st.integers(1, 4))
@run_settings
def test_property_bfs_on_ib_with_aggregator(data, n_gpus):
    n, edges = data
    graph = _build(n, edges)
    if graph.n_edges == 0:
        return
    source = largest_component_vertex(graph)
    partition = random_partition(graph, n_gpus, seed=n)
    app = AtosBFS(graph, partition, source)
    AtosExecutor(
        summit_ib(n_gpus), app, AtosConfig(fetch_size=1, wait_time=4)
    ).run()
    assert np.array_equal(app.result(), reference_bfs(graph, source))


@given(graphs, st.integers(1, 3))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_pagerank_always_close_to_reference(data, n_gpus):
    n, edges = data
    graph = _build(n, edges)
    partition = bfs_grow_partition(graph, n_gpus, seed=n)
    app = AtosPageRank(graph, partition, epsilon=1e-4)
    AtosExecutor(daisy(min(n_gpus, 4)), app, AtosConfig()).run()
    assert pagerank_close(
        app.result(), reference_pagerank(graph, epsilon=1e-4)
    )


@given(graphs)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_pagerank_mass_bounded(data):
    # Residual push conserves mass: sum(rank + residual) <= n, > 0.
    n, edges = data
    graph = _build(n, edges)
    partition = random_partition(graph, 2, seed=n)
    app = AtosPageRank(graph, partition, epsilon=1e-3)
    AtosExecutor(daisy(2), app, AtosConfig()).run()
    total = app.result().sum()
    assert 0 < total <= graph.n_vertices + 1e-9
