"""Tests for the connected-components extension application."""

import networkx as nx
import numpy as np
import pytest

from repro.config import daisy, summit_ib
from repro.graph import (
    CSRGraph,
    grid_mesh,
    path_graph,
    random_partition,
    rmat,
)
from repro.apps import AtosConnectedComponents, reference_components
from repro.runtime import AtosConfig, AtosExecutor


def _run(graph, machine, config=AtosConfig()):
    part = random_partition(graph, machine.n_gpus, seed=1)
    app = AtosConnectedComponents(graph, part)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return app.result(), makespan, counters


def _component_count(labels):
    return len(np.unique(labels))


def test_reference_components_simple():
    # 0-1 connected, 2 isolated.
    g = CSRGraph.from_edges([0], [1], 3).symmetrized()
    labels = reference_components(g)
    assert labels[0] == labels[1]
    assert labels[2] != labels[0]


def test_single_component_path():
    g = path_graph(30)
    labels, _, _ = _run(g, daisy(2))
    assert _component_count(labels) == 1
    assert np.all(labels == 0)  # min label wins


@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_matches_reference_on_fragmented_mesh(n_gpus):
    g = grid_mesh(20, 20, drop_fraction=0.4, shortcut_fraction=0.0, seed=5)
    labels, _, _ = _run(g, daisy(n_gpus))
    assert np.array_equal(labels, reference_components(g))


def test_matches_networkx_component_count():
    g = grid_mesh(16, 16, drop_fraction=0.35, shortcut_fraction=0.0, seed=9)
    labels, _, _ = _run(g, daisy(3))
    src, dst = g.to_edges()
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(g.n_vertices))
    nx_graph.add_edges_from(zip(src.tolist(), dst.tolist()))
    assert _component_count(labels) == nx.number_connected_components(
        nx_graph
    )


def test_labels_are_component_minima():
    g = grid_mesh(12, 12, drop_fraction=0.3, shortcut_fraction=0.0, seed=2)
    labels, _, _ = _run(g, daisy(2))
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        assert label == members.min()


def test_runs_on_ib_with_aggregator():
    g = rmat(scale=8, edge_factor=4, seed=3)  # symmetric by default
    labels, _, counters = _run(g, summit_ib(4))
    assert np.array_equal(labels, reference_components(g))


def test_counters_and_makespan():
    g = grid_mesh(10, 10, seed=1)
    labels, makespan, counters = _run(g, daisy(2))
    assert makespan > 0
    assert counters["vertices_visited"] >= g.n_vertices


def test_partition_mismatch_rejected():
    g = path_graph(10)
    part = random_partition(g, 2, seed=0)
    app = AtosConnectedComponents(g, part)
    with pytest.raises(ValueError):
        app.setup(3)
