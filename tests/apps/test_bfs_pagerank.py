"""Application correctness: Atos BFS / PageRank vs serial references,
across machines, partitions, and executor configurations."""

import numpy as np
import pytest

from repro.config import daisy, summit_ib, summit_node
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    bfs_grow_partition,
    grid_mesh,
    largest_component_vertex,
    path_graph,
    random_partition,
    rmat,
    star_graph,
)
from repro.apps import (
    AtosBFS,
    AtosPageRank,
    UNREACHED,
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.runtime import AtosConfig, AtosExecutor


def small_scale_free():
    return rmat(scale=8, edge_factor=6, seed=7)


def small_mesh():
    return grid_mesh(16, 16, seed=7)


def _run_bfs(graph, source, machine, config=AtosConfig(), partition=None):
    part = partition or random_partition(graph, machine.n_gpus, seed=1)
    app = AtosBFS(graph, part, source)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return app.result(), makespan, counters


# ----------------------------------------------------------------- BFS
@pytest.mark.parametrize("n_gpus", [1, 2, 3, 4])
def test_bfs_matches_reference_scale_free(n_gpus):
    g = small_scale_free()
    src = largest_component_vertex(g)
    depth, _, _ = _run_bfs(g, src, daisy(n_gpus))
    assert np.array_equal(depth, reference_bfs(g, src))


@pytest.mark.parametrize("n_gpus", [1, 4])
def test_bfs_matches_reference_mesh(n_gpus):
    g = small_mesh()
    depth, _, _ = _run_bfs(g, 0, daisy(n_gpus))
    assert np.array_equal(depth, reference_bfs(g, 0))


@pytest.mark.parametrize(
    "kernel,priority",
    [
        (KernelStrategy.PERSISTENT, False),
        (KernelStrategy.DISCRETE, False),
        (KernelStrategy.DISCRETE, True),
        (KernelStrategy.PERSISTENT, True),
    ],
)
def test_bfs_all_configurations_correct(kernel, priority):
    g = small_scale_free()
    src = largest_component_vertex(g)
    config = AtosConfig(kernel=kernel, priority=priority, fetch_size=1)
    depth, _, _ = _run_bfs(g, src, daisy(3), config)
    assert np.array_equal(depth, reference_bfs(g, src))


def test_bfs_on_ib_with_aggregator():
    g = small_scale_free()
    src = largest_component_vertex(g)
    depth, _, counters = _run_bfs(g, src, summit_ib(4))
    assert np.array_equal(depth, reference_bfs(g, src))
    assert counters["aggregated_messages"] >= 1


def test_bfs_on_summit_node_topology():
    g = small_scale_free()
    src = largest_component_vertex(g)
    depth, _, _ = _run_bfs(g, src, summit_node(6))
    assert np.array_equal(depth, reference_bfs(g, src))


def test_bfs_with_metis_like_partition():
    g = small_mesh()
    part = bfs_grow_partition(g, 4, seed=0)
    depth, _, _ = _run_bfs(g, 0, daisy(4), partition=part)
    assert np.array_equal(depth, reference_bfs(g, 0))


def test_bfs_unreachable_vertices_stay_unreached():
    # Two components; BFS from component A must not touch B.
    g = rmat(scale=6, edge_factor=3, seed=3)
    src = largest_component_vertex(g)
    depth, _, _ = _run_bfs(g, src, daisy(2))
    ref = reference_bfs(g, src)
    assert np.array_equal(depth, ref)
    assert (depth == UNREACHED).sum() == (ref == UNREACHED).sum()


def test_bfs_path_graph_depths():
    g = path_graph(64)
    depth, _, _ = _run_bfs(g, 0, daisy(2))
    assert np.array_equal(depth, np.arange(64))


def test_bfs_star_graph():
    g = star_graph(50)
    depth, _, _ = _run_bfs(g, 0, daisy(4))
    assert depth[0] == 0 and np.all(depth[1:] == 1)


def test_bfs_source_validation():
    g = path_graph(4)
    part = random_partition(g, 1)
    with pytest.raises(ValueError):
        AtosBFS(g, part, source=99)


def test_bfs_counters_populated():
    g = small_scale_free()
    src = largest_component_vertex(g)
    _, _, counters = _run_bfs(g, src, daisy(2))
    assert counters["vertices_visited"] > 0
    assert counters["edges_processed"] > 0
    assert counters["remote_updates"] > 0


def test_bfs_priority_workload_not_worse():
    g = rmat(scale=9, edge_factor=8, seed=5)
    src = largest_component_vertex(g)
    part = bfs_grow_partition(g, 4, seed=0)
    base_cfg = AtosConfig(fetch_size=1)
    prio_cfg = AtosConfig(
        kernel=KernelStrategy.DISCRETE, priority=True, fetch_size=1
    )
    _, _, c_base = _run_bfs(g, src, daisy(4), base_cfg, part)
    _, _, c_prio = _run_bfs(g, src, daisy(4), prio_cfg, part)
    assert c_prio["vertices_visited"] <= c_base["vertices_visited"]


# ------------------------------------------------------------ PageRank
def _run_pr(graph, machine, config=AtosConfig(), epsilon=1e-4, alpha=0.85):
    part = random_partition(graph, machine.n_gpus, seed=1)
    app = AtosPageRank(graph, part, alpha=alpha, epsilon=epsilon)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return app.result(), makespan, counters


@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_pagerank_matches_reference(n_gpus):
    g = small_scale_free()
    rank, _, _ = _run_pr(g, daisy(n_gpus))
    assert pagerank_close(rank, reference_pagerank(g, epsilon=1e-4))


def test_pagerank_mesh():
    g = small_mesh()
    rank, _, _ = _run_pr(g, daisy(2))
    assert pagerank_close(rank, reference_pagerank(g, epsilon=1e-4))


def test_pagerank_on_ib():
    g = small_scale_free()
    rank, _, counters = _run_pr(g, summit_ib(4))
    assert pagerank_close(rank, reference_pagerank(g, epsilon=1e-4))


def test_pagerank_mass_conservation():
    # Total rank mass == n * (1 - alpha) * sum over propagation ==
    # for a graph where every vertex has out-degree >= 1, total mass
    # approaches n; dangling vertices absorb their residual.  The sum
    # of rank+residual is bounded by n and positive.
    g = small_scale_free()
    rank, _, _ = _run_pr(g, daisy(2))
    assert 0 < rank.sum() <= g.n_vertices + 1e-6
    assert np.all(rank >= 0)


def test_pagerank_discrete_kernel():
    g = small_scale_free()
    rank, _, _ = _run_pr(
        g, daisy(3), AtosConfig(kernel=KernelStrategy.DISCRETE)
    )
    assert pagerank_close(rank, reference_pagerank(g, epsilon=1e-4))


def test_pagerank_tighter_epsilon_closer_result():
    g = small_scale_free()
    loose, _, _ = _run_pr(g, daisy(1), epsilon=1e-2)
    tight, _, _ = _run_pr(g, daisy(1), epsilon=1e-5)
    exact = reference_pagerank(g, epsilon=1e-8)
    assert np.abs(tight - exact).max() <= np.abs(loose - exact).max() + 1e-9


def test_pagerank_alpha_validation():
    g = path_graph(4)
    part = random_partition(g, 1)
    with pytest.raises(ValueError):
        AtosPageRank(g, part, alpha=1.5)
    with pytest.raises(ValueError):
        AtosPageRank(g, part, epsilon=0)


def test_pagerank_star_hub_has_highest_rank():
    g = star_graph(40)
    rank, _, _ = _run_pr(g, daisy(2))
    assert rank[0] == rank.max()


def test_pagerank_counters():
    g = small_scale_free()
    _, _, counters = _run_pr(g, daisy(2))
    assert counters["vertices_relaxed"] >= g.n_vertices
    assert counters["remote_updates_applied"] > 0
