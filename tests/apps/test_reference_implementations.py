"""Cross-checks of the serial reference implementations themselves.

The references are the trust anchor for every simulated run, so they
get their own validation against independent implementations
(networkx, scipy, closed forms).
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    grid_mesh,
    largest_component_vertex,
    path_graph,
    rmat,
    star_graph,
    uniform_weights,
)
from repro.apps import (
    reference_bfs,
    reference_pagerank,
    reference_sssp,
)


def _nx_graph(graph):
    src, dst = graph.to_edges()
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n_vertices))
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


def test_reference_bfs_vs_networkx():
    g = rmat(scale=8, edge_factor=5, seed=23)
    src = largest_component_vertex(g)
    ours = reference_bfs(g, src)
    theirs = nx.single_source_shortest_path_length(_nx_graph(g), src)
    for v, d in theirs.items():
        assert ours[v] == d


def test_reference_pagerank_vs_networkx():
    # Residual push PR on a graph with no dangling vertices converges
    # to n * networkx's normalized PageRank.  Guarantee min out-degree
    # >= 1 by overlaying a ring on an RMAT graph (networkx handles
    # dangling mass differently from absorbing residual PR).
    base = rmat(scale=6, edge_factor=8, seed=11)
    n = base.n_vertices
    src, dst = base.to_edges()
    ring = np.arange(n)
    g = CSRGraph.from_edges(
        np.concatenate([src, ring]),
        np.concatenate([dst, (ring + 1) % n]),
        n,
    )
    assert int(np.asarray(g.out_degree()).min()) >= 1
    ours = reference_pagerank(g, alpha=0.85, epsilon=1e-9)
    theirs = nx.pagerank(_nx_graph(g), alpha=0.85, tol=1e-12)
    theirs_arr = np.array([theirs[v] for v in range(g.n_vertices)])
    ours_normalized = ours / ours.sum()
    assert np.allclose(ours_normalized, theirs_arr, atol=1e-5)


def test_reference_pagerank_uniform_on_symmetric_regular():
    # On a k-regular symmetric graph, PageRank is uniform.
    n = 16
    src = np.repeat(np.arange(n), 2)
    dst = np.concatenate([(np.arange(n) + 1) % n, (np.arange(n) - 1) % n])
    order = np.argsort(src, kind="stable")
    g = CSRGraph.from_edges(src[order], dst[order], n)
    rank = reference_pagerank(g, epsilon=1e-10)
    assert np.allclose(rank, rank[0])


def test_reference_sssp_vs_networkx():
    g = rmat(scale=7, edge_factor=5, seed=29)
    w = uniform_weights(g, seed=5)
    src = largest_component_vertex(g)
    ours = reference_sssp(w, src)
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n_vertices))
    s_arr, d_arr = g.to_edges()
    for s, d, weight in zip(s_arr, d_arr, w.weights):
        nxg.add_edge(int(s), int(d), weight=float(weight))
    theirs = nx.single_source_dijkstra_path_length(nxg, src)
    for v in range(g.n_vertices):
        if v in theirs:
            assert ours[v] == pytest.approx(theirs[v])
        else:
            assert np.isinf(ours[v])


def test_reference_bfs_on_closed_forms():
    assert list(reference_bfs(path_graph(5), 0)) == [0, 1, 2, 3, 4]
    star = reference_bfs(star_graph(6), 0)
    assert star[0] == 0 and np.all(star[1:] == 1)
    mesh = reference_bfs(
        grid_mesh(5, 5, drop_fraction=0.0, shortcut_fraction=0.0), 0
    )
    assert mesh[24] == 8  # manhattan distance corner-to-corner
