"""Tests for weighted graphs and the SSSP extension application."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import daisy, summit_ib
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    CSRGraph,
    WeightedGraph,
    bfs_grow_partition,
    geometric_weights,
    grid_mesh,
    largest_component_vertex,
    path_graph,
    random_partition,
    rmat,
    uniform_weights,
)
from repro.apps import AtosSSSP, reference_sssp
from repro.runtime import AtosConfig, AtosExecutor


# -------------------------------------------------------- WeightedGraph
def test_weighted_graph_validation():
    g = path_graph(4)
    with pytest.raises(ValueError):
        WeightedGraph(g, np.ones(3))  # wrong length
    with pytest.raises(ValueError):
        WeightedGraph(g, np.zeros(g.n_edges))  # non-positive


def test_weighted_expand_batch_alignment():
    g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], 3)
    w = WeightedGraph(g, np.array([10.0, 20.0, 30.0]))
    targets, origin, weights = w.expand_batch(np.array([0, 1]))
    assert list(targets) == [1, 2, 2]
    assert list(weights) == [10.0, 20.0, 30.0]
    assert list(origin) == [0, 0, 1]


def test_weighted_expand_batch_empty():
    g = path_graph(3)
    w = uniform_weights(g)
    targets, origin, weights = w.expand_batch(np.array([], dtype=np.int64))
    assert len(targets) == len(origin) == len(weights) == 0


def test_uniform_weights_symmetric_and_in_range():
    g = rmat(scale=7, edge_factor=4, seed=5)
    w = uniform_weights(g, low=2.0, high=5.0, seed=1)
    assert w.weights.min() >= 2.0 and w.weights.max() <= 5.0
    assert w.symmetric_weights_ok()


def test_uniform_weights_validation():
    g = path_graph(3)
    with pytest.raises(ValueError):
        uniform_weights(g, low=0.0)
    with pytest.raises(ValueError):
        uniform_weights(g, low=5.0, high=1.0)


def test_geometric_weights_reflect_distance():
    g = grid_mesh(10, 10, drop_fraction=0.0, shortcut_fraction=0.0)
    w = geometric_weights(g, width=10, seed=0)
    # Lattice edges are unit-distance: weights near 1 (with jitter).
    assert w.weights.min() >= 0.5
    assert w.weights.max() <= 1.5


def test_row_subweights_align_with_subgraph():
    g = rmat(scale=6, edge_factor=4, seed=2)
    w = uniform_weights(g, seed=3)
    rows = np.array([1, 5, 9])
    sub = w.row_subweights(rows)
    assert sub.graph.n_vertices == 3
    _, _, expected = w.expand_batch(rows)
    assert np.array_equal(sub.weights, expected)


# ------------------------------------------------------------------ SSSP
def _run_sssp(weighted, source, machine, config=AtosConfig(fetch_size=1)):
    part = random_partition(weighted.graph, machine.n_gpus, seed=1)
    app = AtosSSSP(weighted, part, source)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return app.result(), counters


def _assert_matches_dijkstra(dist, ref):
    finite = np.isfinite(ref)
    assert np.array_equal(np.isfinite(dist), finite)
    assert np.allclose(dist[finite], ref[finite])


@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_sssp_matches_dijkstra_scale_free(n_gpus):
    g = rmat(scale=8, edge_factor=5, seed=4)
    w = uniform_weights(g, seed=2)
    src = largest_component_vertex(g)
    dist, _ = _run_sssp(w, src, daisy(n_gpus))
    _assert_matches_dijkstra(dist, reference_sssp(w, src))


def test_sssp_matches_dijkstra_mesh_with_priority():
    g = grid_mesh(16, 16, seed=2)
    w = geometric_weights(g, width=16, seed=2)
    config = AtosConfig(
        kernel=KernelStrategy.DISCRETE,
        priority=True,
        threshold_delta=2.0,
        fetch_size=1,
    )
    dist, _ = _run_sssp(w, 0, daisy(3), config)
    _assert_matches_dijkstra(dist, reference_sssp(w, 0))


def test_sssp_on_ib():
    g = rmat(scale=7, edge_factor=5, seed=9)
    w = uniform_weights(g, seed=9)
    src = largest_component_vertex(g)
    dist, counters = _run_sssp(w, src, summit_ib(4))
    _assert_matches_dijkstra(dist, reference_sssp(w, src))


def test_sssp_priority_reduces_relaxations():
    """The delta-stepping payoff: far fewer re-relaxations."""
    g = grid_mesh(20, 20, seed=7)
    w = geometric_weights(g, width=20, seed=7)
    part = bfs_grow_partition(g, 4, seed=0)

    fifo = AtosSSSP(w, part, 0)
    AtosExecutor(daisy(4), fifo, AtosConfig(fetch_size=1)).run()
    prio = AtosSSSP(w, part, 0)
    AtosExecutor(
        daisy(4),
        prio,
        AtosConfig(
            kernel=KernelStrategy.DISCRETE,
            priority=True,
            threshold_delta=2.0,
            fetch_size=1,
        ),
    ).run()
    assert (
        prio.counters()["vertices_relaxed"]
        < 0.7 * fifo.counters()["vertices_relaxed"]
    )


def test_sssp_unreachable_stay_infinite():
    g = CSRGraph.from_edges([0], [1], 4).symmetrized()
    w = uniform_weights(g)
    dist, _ = _run_sssp(w, 0, daisy(1))
    assert np.isinf(dist[2]) and np.isinf(dist[3])


def test_sssp_source_validation():
    g = path_graph(4)
    w = uniform_weights(g)
    with pytest.raises(ValueError):
        AtosSSSP(w, random_partition(g, 1), source=10)


@given(
    st.integers(4, 40).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=n // 2,
                max_size=3 * n,
            ),
            st.integers(1, 3),
        )
    )
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_sssp_matches_dijkstra(data):
    n, edges, n_gpus = data
    g = CSRGraph.from_edges(
        [e[0] for e in edges], [e[1] for e in edges], n
    ).symmetrized()
    if g.n_edges == 0:
        return
    w = uniform_weights(g, seed=n)
    src = largest_component_vertex(g)
    dist, _ = _run_sssp(w, src, daisy(n_gpus))
    _assert_matches_dijkstra(dist, reference_sssp(w, src))
