"""Tests for the speculative graph-coloring extension application."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import daisy, summit_ib
from repro.graph import (
    CSRGraph,
    complete_graph,
    grid_mesh,
    path_graph,
    random_partition,
    rmat,
    star_graph,
)
from repro.apps import AtosColoring, greedy_coloring, is_proper_coloring
from repro.runtime import AtosConfig, AtosExecutor


def _run(graph, machine, config=AtosConfig(fetch_size=1)):
    part = random_partition(graph, machine.n_gpus, seed=1)
    app = AtosColoring(graph, part)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return app.result(), counters


# ------------------------------------------------------------ references
def test_greedy_coloring_path_uses_two_colors():
    colors = greedy_coloring(path_graph(10))
    assert is_proper_coloring(path_graph(10), colors)
    assert colors.max() == 1


def test_greedy_coloring_complete_graph_needs_n():
    g = complete_graph(5)
    colors = greedy_coloring(g)
    assert is_proper_coloring(g, colors)
    assert colors.max() == 4


def test_is_proper_coloring_detects_violations():
    g = path_graph(3)
    assert not is_proper_coloring(g, np.array([0, 0, 1]))
    assert not is_proper_coloring(g, np.array([-1, 0, 1]))
    assert is_proper_coloring(g, np.array([0, 1, 0]))


# ------------------------------------------------------------- Atos runs
@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_coloring_proper_on_scale_free(n_gpus):
    g = rmat(scale=8, edge_factor=5, seed=6)
    colors, counters = _run(g, daisy(n_gpus))
    assert is_proper_coloring(g, colors)
    assert counters["color_attempts"] >= g.n_vertices


def test_coloring_proper_on_mesh():
    g = grid_mesh(16, 16, seed=6)
    colors, _ = _run(g, daisy(3))
    assert is_proper_coloring(g, colors)
    # Planar-ish mesh: handful of colors, close to greedy quality.
    assert colors.max() + 1 <= greedy_coloring(g).max() + 4


def test_coloring_on_ib_with_aggregator():
    g = rmat(scale=8, edge_factor=4, seed=7)
    colors, counters = _run(g, summit_ib(4))
    assert is_proper_coloring(g, colors)
    assert counters["mirror_updates"] > 0


def test_coloring_star_graph_two_colors():
    g = star_graph(30)
    colors, _ = _run(g, daisy(2))
    assert is_proper_coloring(g, colors)
    assert colors.max() == 1


def test_coloring_complete_graph_heavy_conflicts():
    g = complete_graph(12)
    colors, counters = _run(g, daisy(4))
    assert is_proper_coloring(g, colors)
    assert colors.max() == 11
    assert counters["conflicts"] > 0  # all-vs-all speculation collides


def test_coloring_quality_vs_greedy_bounded():
    g = rmat(scale=9, edge_factor=6, seed=8)
    colors, _ = _run(g, daisy(4))
    greedy = greedy_coloring(g)
    # Speculative coloring may use more colors, but within ~2x greedy.
    assert colors.max() + 1 <= 2 * (greedy.max() + 1)


def test_coloring_partition_mismatch():
    g = path_graph(8)
    app = AtosColoring(g, random_partition(g, 2, seed=0))
    with pytest.raises(ValueError):
        app.setup(3)


@given(
    st.integers(4, 36).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=n // 2,
                max_size=3 * n,
            ),
            st.integers(1, 3),
        )
    )
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_coloring_always_proper(data):
    n, edges, n_gpus = data
    g = CSRGraph.from_edges(
        [e[0] for e in edges], [e[1] for e in edges], n
    ).symmetrized()
    colors, _ = _run(g, daisy(n_gpus))
    assert is_proper_coloring(g, colors)
