"""Tests for the BSP / direction-optimized traces used by baselines."""

import numpy as np
import pytest

from repro.graph import (
    bfs_grow_partition,
    grid_mesh,
    largest_component_vertex,
    random_partition,
    rmat,
)
from repro.apps import pagerank_close, reference_bfs, reference_pagerank
from repro.apps.bfs_variants import (
    bsp_bfs_trace,
    direction_optimized_bfs_trace,
)
from repro.apps.pagerank_variants import bsp_pagerank_trace


def graph_and_partition(n_parts=3):
    g = rmat(scale=8, edge_factor=6, seed=11)
    return g, random_partition(g, n_parts, seed=0)


# --------------------------------------------------------- BSP BFS trace
def test_bsp_bfs_depths_match_reference():
    g, part = graph_and_partition()
    src = largest_component_vertex(g)
    trace = bsp_bfs_trace(g, part, src)
    assert np.array_equal(trace.depth, reference_bfs(g, src))


def test_bsp_bfs_level_count_is_eccentricity():
    g = grid_mesh(12, 12, drop_fraction=0.0, shortcut_fraction=0.0)
    part = random_partition(g, 2, seed=0)
    trace = bsp_bfs_trace(g, part, 0)
    assert trace.n_levels == 22 + 1  # corner-to-corner + final empty level


def test_bsp_bfs_frontier_sums_match_visits():
    g, part = graph_and_partition()
    src = largest_component_vertex(g)
    trace = bsp_bfs_trace(g, part, src)
    visited = int((trace.depth != np.iinfo(np.int32).max).sum())
    frontier_total = int(
        sum(t.frontier_per_pe.sum() for t in trace.levels)
    )
    assert frontier_total == visited


def test_bsp_bfs_remote_matrix_zero_diagonal_and_single_pe():
    g, part = graph_and_partition(1)
    trace = bsp_bfs_trace(g, part, largest_component_vertex(g))
    for level in trace.levels:
        assert level.remote_updates.sum() == 0
    g, part = graph_and_partition(3)
    trace = bsp_bfs_trace(g, part, largest_component_vertex(g))
    total_remote = 0
    for level in trace.levels:
        assert np.all(np.diag(level.remote_updates) == 0)
        total_remote += level.remote_updates.sum()
    assert total_remote > 0


def test_bsp_bfs_edges_bounded_by_graph():
    g, part = graph_and_partition()
    trace = bsp_bfs_trace(g, part, largest_component_vertex(g))
    assert 0 < trace.total_edges() <= g.n_edges


# ------------------------------------------------- direction-optimized
def test_do_bfs_depths_match_reference():
    g, part = graph_and_partition()
    src = largest_component_vertex(g)
    trace = direction_optimized_bfs_trace(g, part, src)
    assert np.array_equal(trace.depth, reference_bfs(g, src))


def test_do_bfs_uses_pull_on_scale_free():
    # Scale-free BFS frontiers explode: some level must switch to pull.
    g = rmat(scale=10, edge_factor=10, seed=2)
    part = random_partition(g, 2, seed=0)
    trace = direction_optimized_bfs_trace(
        g, part, largest_component_vertex(g)
    )
    assert any(t.direction == "pull" for t in trace.levels)


def test_do_bfs_stays_push_on_thin_mesh():
    g = grid_mesh(30, 30, seed=1)
    part = random_partition(g, 2, seed=0)
    trace = direction_optimized_bfs_trace(g, part, 0, pull_threshold=0.2)
    assert all(t.direction == "push" for t in trace.levels)


def test_do_bfs_pull_levels_cost_bitmap_comm():
    g = rmat(scale=10, edge_factor=10, seed=2)
    part = random_partition(g, 3, seed=0)
    trace = direction_optimized_bfs_trace(
        g, part, largest_component_vertex(g)
    )
    pull_levels = [t for t in trace.levels if t.direction == "pull"]
    assert pull_levels
    for t in pull_levels:
        off_diag = t.remote_updates[~np.eye(3, dtype=bool)]
        assert np.all(off_diag > 0)  # bitmap broadcast to all peers


# ------------------------------------------------------------- BSP PR
def test_bsp_pagerank_matches_reference():
    g, part = graph_and_partition()
    trace = bsp_pagerank_trace(g, part, epsilon=1e-4)
    assert pagerank_close(trace.rank, reference_pagerank(g, epsilon=1e-4))


def test_bsp_pagerank_full_work_model_same_result_more_work():
    g, part = graph_and_partition()
    filtered = bsp_pagerank_trace(g, part, epsilon=1e-4)
    full = bsp_pagerank_trace(g, part, epsilon=1e-4, work_model="full")
    assert np.allclose(filtered.rank, full.rank)
    assert full.total_edges() > filtered.total_edges()


def test_bsp_pagerank_static_boundary():
    g, part = graph_and_partition()
    trace = bsp_pagerank_trace(g, part, epsilon=1e-4)
    assert trace.static_boundary is not None
    assert np.all(np.diag(trace.static_boundary) == 0)
    # Per-iteration active boundary never exceeds the static boundary.
    for it in trace.iterations:
        assert np.all(it.remote_updates <= trace.static_boundary)


def test_bsp_pagerank_iterations_decrease_with_looser_epsilon():
    g, part = graph_and_partition()
    tight = bsp_pagerank_trace(g, part, epsilon=1e-5)
    loose = bsp_pagerank_trace(g, part, epsilon=1e-2)
    assert loose.n_iterations < tight.n_iterations


def test_bsp_pagerank_invalid_work_model():
    g, part = graph_and_partition()
    with pytest.raises(ValueError):
        bsp_pagerank_trace(g, part, work_model="bogus")
