"""CLI tests: every subcommand runs and prints what it promises."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "1.0.0" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_datasets(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "soc-livejournal1" in out and "mesh-like" in out


def test_run_with_counters(capsys):
    code = main(
        [
            "run",
            "--framework", "gunrock",
            "--app", "bfs",
            "--dataset", "hollywood-2009",
            "--gpus", "2",
            "--counters",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "gunrock bfs on hollywood-2009" in out
    assert "edges_processed" in out


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "--framework", "gunrock", "--app", "sssp",
              "--dataset", "road-usa"])


def test_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "concurrent push" in out
    assert "Broker queue" in out


def test_fig2(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "NVLink" in out and "PCIe3" in out


def test_fig4(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "optimal batch size: 2^20" in out


def test_topology_daisy(capsys):
    assert main(["topology", "daisy"]) == 0
    out = capsys.readouterr().out
    assert "NV2" in out and "bisection bandwidth" in out


def test_topology_summit_node(capsys):
    assert main(["topology", "summit-node"]) == 0
    assert "GPU5" in capsys.readouterr().out


def test_table2_quick(capsys):
    assert main(["table2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Application: bfs on gunrock" in out
    assert "(x" in out  # speedups present


def test_table3_quick(capsys):
    assert main(["table3", "--quick"]) == 0
    assert "->" in capsys.readouterr().out


def test_table2_quick_pooled_matches_serial(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["table2", "--quick", "--jobs", "2"]) == 0
    pooled = capsys.readouterr().out
    assert main(["table2", "--quick"]) == 0
    assert capsys.readouterr().out == pooled


def test_cache_subcommands(capsys, tmp_path, monkeypatch):
    from repro.harness import clear_memory_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()  # force the next run to hit the disk layer
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and str(tmp_path / "cache") in out
    assert main(["run", "--framework", "gunrock", "--app", "bfs",
                 "--dataset", "hollywood-2009"]) == 0
    capsys.readouterr()
    assert main(["cache", "verify"]) == 0
    assert "removed 0 corrupt" in capsys.readouterr().out
    assert main(["cache", "clear"]) == 0
    assert "removed 1 cached run" in capsys.readouterr().out


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("datasets", "run", "table2", "table5", "fig1",
                    "topology", "cache", "chaos", "recover",
                    "engine-bench", "pdes-bench"):
        assert command in help_text


def test_engine_bench_validate_committed_document(capsys):
    # The committed BENCH_engine.json must satisfy the schema the CI
    # engine-bench-smoke job enforces.
    from pathlib import Path

    doc = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    assert main(["engine-bench", "--validate", str(doc)]) == 0
    assert "valid" in capsys.readouterr().out


def test_pdes_bench_validate_committed_document(capsys):
    # Same contract for the committed BENCH_pdes.json (pdes-smoke job).
    from pathlib import Path

    doc = Path(__file__).resolve().parents[1] / "BENCH_pdes.json"
    assert main(["pdes-bench", "--validate", str(doc)]) == 0
    assert "valid" in capsys.readouterr().out


def test_run_partitions_flags_parse():
    args = build_parser().parse_args(
        ["run", "--framework", "atos-standard-persistent", "--app",
         "bfs", "--dataset", "hollywood-2009", "--partitions", "2",
         "--pdes-driver", "local"]
    )
    assert args.partitions == 2
    assert args.pdes_driver == "local"


def test_report_quick(capsys):
    assert main(["report", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "winner agreement" in out
    assert "Table II" in out and "Table IV" in out


def test_chaos_quick(capsys):
    code = main(["chaos", "--quick", "--drop-rates", "0,0.1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Chaos grid" in out
    assert "pass" in out and "FAIL" not in out


def test_chaos_parser_flags():
    args = build_parser().parse_args(
        ["chaos", "--quick", "--seed", "7", "--drop-rates", "0,0.2",
         "--gpus", "2", "--verify-inert"]
    )
    assert args.seed == 7
    assert args.verify_inert
    assert args.gpus == 2


def test_recover_quick(capsys):
    code = main(["recover", "--quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Crash grid" in out
    assert "pass" in out and "FAIL" not in out


def test_recover_parser_flags():
    args = build_parser().parse_args(
        ["recover", "--quick", "--seed", "7", "--crash-times", "20,45",
         "--crash-pes", "0,2", "--gpus", "2", "--jobs", "2",
         "--verify-inert"]
    )
    assert args.seed == 7
    assert args.verify_inert
    assert args.crash_times == "20,45"
    assert args.crash_pes == "0,2"
    assert args.gpus == 2
    assert args.jobs == 2


def test_seed_flag_on_grid_and_bench_parsers():
    parser = build_parser()
    assert parser.parse_args(["table2", "--seed", "3"]).seed == 3
    assert parser.parse_args(["table5", "--seed", "5"]).seed == 5
    assert parser.parse_args(["bench", "--quick", "--seed", "2"]).seed == 2
    assert parser.parse_args(["report", "--quick"]).seed == 0


def test_run_accepts_seed(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.harness import clear_memory_cache

    clear_memory_cache()
    code = main(
        [
            "run",
            "--framework", "gunrock",
            "--app", "bfs",
            "--dataset", "hollywood-2009",
            "--gpus", "2",
            "--seed", "1",
        ]
    )
    assert code == 0
    assert "gunrock bfs on hollywood-2009" in capsys.readouterr().out
    clear_memory_cache()


def test_profile_quick(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    trace = tmp_path / "trace.json"
    code = main(
        [
            "profile",
            "--dataset", "hollywood-2009",
            "--gpus", "4",
            "--export", str(trace),
            "--top", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "profile: atos-standard-persistent / bfs" in out
    assert "load imbalance" in out
    assert "critical path" in out
    assert "wrote" in out and trace.exists()

    import json

    from repro.telemetry import validate_trace_events

    assert validate_trace_events(json.loads(trace.read_text())) > 0


def test_profile_rejects_bsp_framework(monkeypatch):
    from repro.errors import ConfigurationError

    monkeypatch.setenv("REPRO_CACHE", "0")
    with pytest.raises(ConfigurationError, match="does not support"):
        main(["profile", "--framework", "gunrock",
              "--dataset", "hollywood-2009"])


def test_profile_parser_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["profile", "--framework", "atos-priority-discrete",
         "--app", "pagerank", "--dataset", "road-usa",
         "--machine", "daisy", "--gpus", "2",
         "--export", "out.json", "--top", "5", "--seed", "3"]
    )
    assert args.framework == "atos-priority-discrete"
    assert args.app == "pagerank" and args.machine == "daisy"
    assert args.export == "out.json" and args.top == 5
    assert args.seed == 3
    assert "profile" in parser.format_help()


def test_tune_parser_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["tune", "--preset", "fig4", "--quick", "--seed", "3",
         "--jobs", "2", "--out", "B.json", "--journal", "J.ndjson"]
    )
    assert args.preset == "fig4" and args.quick
    assert args.seed == 3 and args.jobs == 2
    assert args.out == "B.json" and args.journal == "J.ndjson"
    # The acceptance command's default artifact name.
    assert parser.parse_args(["tune"]).out == "BENCH_tune.json"
    assert "tune" in parser.format_help()


def test_tune_space_mode_runs_and_validates(capsys, tmp_path, monkeypatch):
    import json

    from repro.harness import clear_memory_cache
    from repro.tune.space import CategoricalDim, Space

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    space = Space(
        dims=(CategoricalDim("wait_time", choices=(1, 4), ordered=True),),
        base={"app": "bfs", "dataset": "hollywood-2009",
              "machine": "daisy", "n_gpus": 1},
    )
    space_file = tmp_path / "space.json"
    space_file.write_text(space.to_json())
    out = tmp_path / "BENCH_tune.json"
    code = main(["tune", "--space", str(space_file), "--searcher", "grid",
                 "--budget", "2", "--jobs", "1",
                 "--out", str(out)])
    assert code == 0
    text = capsys.readouterr().out
    assert "best:" in text and "evaluations saved" in text
    assert out.exists()
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-tune/1"
    # The journal landed next to the artifact and enables a free re-run.
    assert (tmp_path / "BENCH_tune.ndjson").exists()
    clear_memory_cache()
    assert main(["tune", "--space", str(space_file), "--searcher", "grid",
                 "--budget", "2", "--jobs", "1",
                 "--out", str(out)]) == 0
    resumed = json.loads(out.read_text())
    assert resumed["accounting"]["simulations"] == 0
    assert resumed["accounting"]["journal_replays"] == 2
    capsys.readouterr()
    assert main(["tune", "--validate", str(out)]) == 0
    assert "valid (2 trials)" in capsys.readouterr().out


def test_tune_requires_preset_or_space(capsys):
    assert main(["tune", "--out", ""]) == 2
    assert "--preset fig4 or --space" in capsys.readouterr().out


def test_report_renders_cache_line(capsys, tmp_path, monkeypatch):
    from repro.harness import clear_memory_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    assert main(["report", "--quick"]) == 0
    cold = capsys.readouterr().out
    assert "run cache:" in cold
    # Tables themselves stay cache-temperature-independent: only the
    # trailing cache line may differ between cold and warm runs.
    clear_memory_cache()
    assert main(["report", "--quick"]) == 0
    warm = capsys.readouterr().out
    strip = lambda s: [l for l in s.splitlines()
                       if not l.startswith("run cache:")]  # noqa: E731
    assert strip(warm) == strip(cold)
    assert "hit rate" in warm


def test_tune_validate_committed_document(capsys):
    # The committed BENCH_tune.json must satisfy the schema the CI
    # tune-smoke job enforces.
    from pathlib import Path

    doc = Path(__file__).resolve().parents[1] / "BENCH_tune.json"
    assert main(["tune", "--validate", str(doc)]) == 0
    assert "valid" in capsys.readouterr().out
