"""Golden-digest equality: partitioned vs serial execution.

The partitioned engine's acceptance bar.  Both drivers — the
in-process ``local`` engine and the ``multiprocessing`` ``pooled``
engine — must produce **bit-identical** :meth:`RunResult.digest`
values to a serial :class:`~repro.frameworks.atos.AtosDriver` run of
the same cell: same counters, same output vector, same simulated
makespan.  Covered axes: app (BFS / PageRank), partition count
(1 / 2 / 4), fault plan (clean / chaos / crash-with-recovery).

Everything runs on a small RMAT graph so the full matrix stays in
tier-1 time; the committed ``BENCH_pdes.json`` pins the same contract
on the real evaluation datasets.
"""

import pytest

from repro.faults import CrashEvent, FaultPlan
from repro.frameworks.atos import AtosDriver
from repro.graph.generators import rmat
from repro.graph.partition import random_partition
from repro.harness.runner import get_machine
from repro.runtime import run_partitioned
from repro.runtime.executor import AtosConfig
from repro.sim.partition import WindowStats

EPSILON = 1e-4

CHAOS = FaultPlan(
    seed=5, drop_rate=0.05, duplicate_rate=0.02,
    delay_rate=0.05, delay_jitter=4.0,
)
CRASH = FaultPlan(seed=7, crashes=(CrashEvent(pe=1, at=50.0),))


@pytest.fixture(scope="module")
def cell():
    graph = rmat(8, 8, seed=3)
    partition = random_partition(graph, 4, seed=1)
    machine = get_machine("summit-ib", 4)
    return graph, partition, machine


def _serial(cell, app, plan=None):
    graph, partition, machine = cell
    driver = AtosDriver(base_config=AtosConfig(faults=plan))
    if app == "bfs":
        return driver.run_bfs(graph, partition, 0, machine, dataset="g8")
    return driver.run_pagerank(
        graph, partition, machine, epsilon=EPSILON, dataset="g8"
    )


def _partitioned(cell, app, n, engine, plan=None, stats=None):
    graph, partition, machine = cell
    return run_partitioned(
        app, graph, partition, machine,
        n_partitions=n, driver=engine, source=0, epsilon=EPSILON,
        dataset="g8", base_config=AtosConfig(faults=plan), stats=stats,
    )


@pytest.mark.parametrize("engine", ["local", "pooled"])
@pytest.mark.parametrize("n", [1, 2, 4])
@pytest.mark.parametrize("app", ["bfs", "pagerank"])
def test_digest_equality_clean(cell, app, n, engine):
    serial = _serial(cell, app)
    stats = WindowStats()
    result = _partitioned(cell, app, n, engine, stats=stats)
    assert result.digest() == serial.digest()
    assert result.framework == serial.framework
    if n > 1:
        assert stats.windows > 0


@pytest.mark.parametrize("engine", ["local", "pooled"])
@pytest.mark.parametrize("n", [2, 4])
def test_digest_equality_under_chaos(cell, n, engine):
    # Drops, duplicates and delays engage the resilient transport on
    # every cross-partition link; the replay must still be exact.
    serial = _serial(cell, "bfs", plan=CHAOS)
    result = _partitioned(cell, "bfs", n, engine, plan=CHAOS)
    assert result.digest() == serial.digest()


@pytest.mark.parametrize("engine", ["local", "pooled"])
def test_crash_plan_collapses_to_one_partition(cell, engine):
    # Fail-stop recovery re-homes ranks across partition boundaries,
    # which windowed execution cannot replay; such plans run serially
    # inside the engine (pooled: inside one worker process) and must
    # still match the serial digest exactly.
    serial = _serial(cell, "bfs", plan=CRASH)
    stats = WindowStats()
    with pytest.warns(RuntimeWarning, match="downgrading"):
        result = _partitioned(
            cell, "bfs", 4, engine, plan=CRASH, stats=stats
        )
    assert result.digest() == serial.digest()
    assert stats.windows == 0  # never entered windowed coordination


@pytest.mark.parametrize("app", ["bfs", "pagerank"])
def test_local_and_pooled_agree_window_for_window(cell, app):
    # Same coordinator, same windows: the drivers must agree not just
    # on the final digest but on the synchronization schedule itself.
    local_stats, pooled_stats = WindowStats(), WindowStats()
    local = _partitioned(cell, app, 4, "local", stats=local_stats)
    pooled = _partitioned(cell, app, 4, "pooled", stats=pooled_stats)
    assert local.digest() == pooled.digest()
    assert local_stats.windows == pooled_stats.windows
    assert local_stats.total_exports == pooled_stats.total_exports
    assert local_stats.total_events == pooled_stats.total_events
    assert (
        local_stats.idle_partition_windows
        == pooled_stats.idle_partition_windows
    )
