"""Integration tests for the Atos executor with a toy application."""

import numpy as np
import pytest

from repro.config import daisy, summit_ib
from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelStrategy
from repro.runtime import (
    AtosApplication,
    AtosConfig,
    AtosExecutor,
    RoundOutcome,
)


class TokenRelay(AtosApplication):
    """Toy app: a token bounces between PEs ``hops`` times.

    Each processed task on PE p enqueues the next hop on (p+1) % n.
    Exercises remote updates, termination, and the handler path
    without graph machinery.
    """

    name = "token-relay"

    def __init__(self, hops: int):
        self.hops = hops
        self.n_pes = 0
        self.processed: list[tuple[int, int]] = []

    def setup(self, n_pes):
        self.n_pes = n_pes
        seeds = [(np.empty(0, dtype=np.int64), None) for _ in range(n_pes)]
        seeds[0] = (np.array([self.hops], dtype=np.int64), None)
        return seeds

    def process(self, pe, tasks):
        outcome = RoundOutcome(edges_processed=len(tasks))
        for remaining in tasks.tolist():
            self.processed.append((pe, remaining))
            if remaining > 0:
                if self.n_pes == 1:
                    outcome.local_pushes = np.append(
                        outcome.local_pushes, remaining - 1
                    ).astype(np.int64)
                else:
                    dst = (pe + 1) % self.n_pes
                    payload = np.array([[remaining - 1]], dtype=np.int64)
                    if dst in outcome.remote_updates:
                        payload = np.vstack(
                            [outcome.remote_updates[dst], payload]
                        )
                    outcome.remote_updates[dst] = payload
        return outcome

    def handle_remote(self, pe, payload):
        return payload[:, 0], None


def test_single_pe_relay_terminates():
    app = TokenRelay(hops=5)
    makespan, counters = AtosExecutor(daisy(1), app).run()
    assert makespan > 0
    assert [r for _, r in app.processed] == [5, 4, 3, 2, 1, 0]


def test_multi_pe_relay_visits_all_pes():
    app = TokenRelay(hops=7)
    makespan, counters = AtosExecutor(daisy(4), app).run()
    pes = [pe for pe, _ in app.processed]
    assert pes == [0, 1, 2, 3, 0, 1, 2, 3]
    assert counters["tasks_processed"] == 8


def test_remote_hops_take_link_time():
    app_local = TokenRelay(hops=8)
    local_time, _ = AtosExecutor(daisy(1), app_local).run()
    app_remote = TokenRelay(hops=8)
    remote_time, _ = AtosExecutor(daisy(2), app_remote).run()
    # Every hop crosses NVLink: remote run must be slower.
    assert remote_time > local_time


def test_cpu_control_path_slower_than_gpu():
    gpu_time, _ = AtosExecutor(
        daisy(2), TokenRelay(hops=10), AtosConfig(control_path="gpu")
    ).run()
    cpu_time, _ = AtosExecutor(
        daisy(2), TokenRelay(hops=10), AtosConfig(control_path="cpu")
    ).run()
    assert cpu_time > gpu_time
    # 10 hops x cpu_control_path_latency should be visible.
    assert cpu_time - gpu_time >= 10 * daisy(2).cost.cpu_control_path_latency * 0.8


def test_segment_rounds_delay_messages():
    eager, _ = AtosExecutor(
        daisy(2), TokenRelay(hops=10), AtosConfig(segment_rounds=1)
    ).run()
    segmented, _ = AtosExecutor(
        daisy(2), TokenRelay(hops=10), AtosConfig(segment_rounds=4)
    ).run()
    assert segmented >= eager


def test_discrete_kernel_charges_round_overhead():
    persistent, _ = AtosExecutor(
        daisy(1),
        TokenRelay(hops=30),
        AtosConfig(kernel=KernelStrategy.PERSISTENT),
    ).run()
    discrete, _ = AtosExecutor(
        daisy(1),
        TokenRelay(hops=30),
        AtosConfig(kernel=KernelStrategy.DISCRETE),
    ).run()
    assert discrete > persistent


def test_round_host_overhead_charged():
    base, _ = AtosExecutor(daisy(1), TokenRelay(hops=20)).run()
    slow, _ = AtosExecutor(
        daisy(1), TokenRelay(hops=20), AtosConfig(round_host_overhead=5.0)
    ).run()
    assert slow >= base + 20 * 5.0 * 0.9


def test_aggregator_on_ib_machine_by_default():
    app = TokenRelay(hops=6)
    executor = AtosExecutor(summit_ib(2), app)
    assert executor.aggregators is not None
    makespan, counters = executor.run()
    assert counters["aggregated_messages"] >= 1
    assert [r for _, r in app.processed] == [6, 5, 4, 3, 2, 1, 0]


def test_aggregator_disabled_on_nvlink_by_default():
    assert AtosExecutor(daisy(2), TokenRelay(hops=2)).aggregators is None


def test_aggregator_wait_time_adds_latency():
    eager, _ = AtosExecutor(
        summit_ib(2), TokenRelay(hops=6), AtosConfig(wait_time=1)
    ).run()
    lazy, _ = AtosExecutor(
        summit_ib(2), TokenRelay(hops=6), AtosConfig(wait_time=16)
    ).run()
    assert lazy > eager


def test_no_seed_work_rejected():
    class EmptyApp(TokenRelay):
        def setup(self, n_pes):
            self.n_pes = n_pes
            return [
                (np.empty(0, dtype=np.int64), None) for _ in range(n_pes)
            ]

    with pytest.raises(ConfigurationError):
        AtosExecutor(daisy(2), EmptyApp(hops=1)).run()


def test_wrong_seed_count_rejected():
    class BadApp(TokenRelay):
        def setup(self, n_pes):
            self.n_pes = n_pes
            return [(np.array([1]), None)]

    with pytest.raises(ConfigurationError):
        AtosExecutor(daisy(2), BadApp(hops=1)).run()


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AtosConfig(control_path="dma")
    with pytest.raises(ConfigurationError):
        AtosConfig(segment_rounds=0)


def test_executor_deterministic():
    times = []
    for _ in range(2):
        makespan, _ = AtosExecutor(daisy(3), TokenRelay(hops=9)).run()
        times.append(makespan)
    assert times[0] == times[1]
