"""Executor configuration coverage: recv queues, worker shapes, polls."""

import numpy as np
import pytest

from repro.config import daisy, summit_ib
from repro.gpu import WorkerConfig
from repro.graph import largest_component_vertex, random_partition, rmat
from repro.apps import AtosBFS, reference_bfs
from repro.runtime import AtosConfig, AtosExecutor


def _run(machine, config):
    g = rmat(scale=8, edge_factor=6, seed=17)
    src = largest_component_vertex(g)
    part = random_partition(g, machine.n_gpus, seed=0)
    app = AtosBFS(g, part, src)
    makespan, counters = AtosExecutor(machine, app, config).run()
    assert np.array_equal(app.result(), reference_bfs(g, src))
    return makespan, counters


@pytest.mark.parametrize("num_recv_queues", [1, 2, 4])
def test_recv_queue_count_preserves_correctness(num_recv_queues):
    _run(daisy(3), AtosConfig(num_recv_queues=num_recv_queues))


@pytest.mark.parametrize(
    "worker",
    [
        WorkerConfig(kind="thread"),
        WorkerConfig(kind="warp"),
        WorkerConfig(kind="cta", cta_threads=256),
        WorkerConfig(kind="cta", cta_threads=512, fetch_size=4),
    ],
)
def test_worker_shapes_preserve_correctness(worker):
    _run(daisy(2), AtosConfig(worker=worker))


def test_tasks_per_round_reflects_worker_and_fetch():
    g = rmat(scale=6, edge_factor=4, seed=1)
    part = random_partition(g, 1, seed=0)
    app = AtosBFS(g, part, largest_component_vertex(g))
    worker = WorkerConfig(kind="cta", cta_threads=512, fetch_size=1)
    ex = AtosExecutor(
        daisy(1), app, AtosConfig(worker=worker, fetch_size=3)
    )
    assert ex.tasks_per_round == worker.n_workers(daisy(1).gpu) * 3


def test_aggregator_poll_cadence_affects_latency():
    fast, _ = _run(summit_ib(3), AtosConfig(wait_time=8,
                                            aggregator_poll=1.0))
    slow, _ = _run(summit_ib(3), AtosConfig(wait_time=8,
                                            aggregator_poll=16.0))
    assert slow >= fast


def test_idle_poll_does_not_change_result_only_timing():
    a, ca = _run(daisy(3), AtosConfig(idle_poll=1.0))
    b, cb = _run(daisy(3), AtosConfig(idle_poll=50.0))
    # Same work either way.
    assert ca["tasks_processed"] == cb["tasks_processed"]


def test_explicit_aggregator_on_nvlink():
    makespan, counters = _run(
        daisy(2), AtosConfig(use_aggregator=True, wait_time=2)
    )
    assert counters["aggregated_messages"] >= 1
