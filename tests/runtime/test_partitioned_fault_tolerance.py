"""Fault tolerance of the pooled partitioned driver.

The tentpole contract: losing a worker process mid-run (pipe EOF,
hard exit) must be *invisible in the outcome* — the coordinator
respawns a replacement, replays its journal of ``(horizon, imports)``
per window, verifies the replay against the report log and any
checkpoint barriers, and the final :meth:`RunResult.digest` stays
bit-identical to the serial reference.  Checkpoints themselves are
observation-only: enabling them on a kill-free run must not perturb
a single bit.

Everything runs on a small RMAT graph so the matrix stays in tier-1
time; ``python -m repro pdes-chaos`` pins the same contract on the
larger seeded grid.
"""

import pytest

from repro.errors import PartitionWorkerLost, SimulationError
from repro.graph.generators import rmat
from repro.graph.partition import random_partition
from repro.harness.runner import get_machine
from repro.runtime import run_partitioned
from repro.runtime.partitioned import WorkerKillPlan
from repro.sim.partition import WindowStats

EPSILON = 1e-4


@pytest.fixture(scope="module")
def cell():
    graph = rmat(8, 8, seed=3)
    partition = random_partition(graph, 4, seed=1)
    machine = get_machine("summit-ib", 4)
    return graph, partition, machine


def _run(cell, app, n, engine="pooled", **kwargs):
    graph, partition, machine = cell
    return run_partitioned(
        app, graph, partition, machine,
        n_partitions=n, driver=engine, source=0, epsilon=EPSILON,
        dataset="g8", **kwargs,
    )


@pytest.fixture(scope="module")
def serial_digests(cell):
    return {app: _run(cell, app, 1, "local").digest()
            for app in ("bfs", "pagerank")}


@pytest.mark.parametrize("window", [0, 2, 5])
@pytest.mark.parametrize("n", [2, 4])
@pytest.mark.parametrize("app", ["bfs", "pagerank"])
def test_kill_digest_identical_to_serial(
    cell, serial_digests, app, n, window
):
    stats = WindowStats()
    result = _run(
        cell, app, n, stats=stats, checkpoint_every=3,
        kill_plan=WorkerKillPlan(partition=1, window=window),
    )
    assert result.digest() == serial_digests[app]
    if window < stats.windows:
        assert stats.workers_respawned == 1
        assert stats.windows_replayed == window + 1
    else:  # kill site past the end of the run: plan never fires
        assert stats.workers_respawned == 0


@pytest.mark.parametrize("app", ["bfs", "pagerank"])
def test_checkpointing_is_inert_without_kills(cell, app):
    baseline = _run(cell, app, 2)
    stats = WindowStats()
    checkpointed = _run(cell, app, 2, stats=stats, checkpoint_every=2)
    assert checkpointed.digest() == baseline.digest()
    assert stats.checkpoints_taken > 0
    assert stats.workers_respawned == 0
    assert stats.windows_replayed == 0


def test_kill_without_checkpoints_still_replays(cell, serial_digests):
    # Checkpoints only *verify* replay; the journal alone is enough
    # to reconstruct a lost worker.
    stats = WindowStats()
    result = _run(
        cell, "bfs", 2, stats=stats,
        kill_plan=WorkerKillPlan(partition=1, window=2),
    )
    assert result.digest() == serial_digests["bfs"]
    assert stats.workers_respawned == 1
    assert stats.checkpoints_taken == 0


def test_serial_pooled_kill_reruns_whole_run(cell, serial_digests):
    # P=1 has no coordinator journal: recovery is respawn + rerun.
    stats = WindowStats()
    result = _run(
        cell, "bfs", 1, stats=stats,
        kill_plan=WorkerKillPlan(partition=0, window=0),
    )
    assert result.digest() == serial_digests["bfs"]
    assert stats.workers_respawned == 1


def test_respawn_budget_exhaustion_raises(cell):
    # A replacement that is itself killed would loop forever without
    # the budget; max_respawns=0 forbids any replacement at all.
    with pytest.raises((PartitionWorkerLost, SimulationError)):
        _run(
            cell, "bfs", 2, max_respawns=0,
            kill_plan=WorkerKillPlan(partition=1, window=1),
        )


def test_kill_plan_rejected_by_local_engine(cell):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        _run(
            cell, "bfs", 2, engine="local",
            kill_plan=WorkerKillPlan(partition=1, window=0),
        )


def test_resilience_counts_surface_in_stats_not_digest(
    cell, serial_digests
):
    # The digest covers RunResult.counters; resilience accounting must
    # live in WindowStats only, or recovery would change the outcome.
    stats = WindowStats()
    result = _run(
        cell, "bfs", 2, stats=stats, checkpoint_every=2,
        kill_plan=WorkerKillPlan(partition=1, window=2),
    )
    assert result.digest() == serial_digests["bfs"]
    assert not any(k.startswith("resilience_") for k in result.counters)
    res = stats.resilience()
    assert res["resilience_workers_respawned"] == 1.0
    assert res["resilience_windows_replayed"] >= 1.0
    assert res["resilience_checkpoints_taken"] >= 1.0
    d = stats.as_dict()
    assert d["workers_respawned"] == 1
    assert d["windows_replayed"] >= 1
