"""Unit tests: work tracker, distributed queues, aggregator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.runtime import (
    Aggregator,
    DistributedPriorityQueues,
    DistributedQueues,
    WorkTracker,
)
from repro.sim import Environment


# ------------------------------------------------------------ WorkTracker
def test_tracker_fires_done_at_zero():
    env = Environment()
    tracker = WorkTracker(env)
    tracker.add(3)
    tracker.remove(2)
    assert not tracker.finished
    tracker.remove(1)
    assert tracker.done.triggered
    env.run()
    assert tracker.finished


def test_tracker_does_not_fire_before_first_add():
    env = Environment()
    tracker = WorkTracker(env)
    assert not tracker.finished
    tracker.add(0)  # no-op
    assert tracker.outstanding == 0 and not tracker.done.triggered


def test_tracker_remove_too_many():
    env = Environment()
    tracker = WorkTracker(env)
    tracker.add(1)
    with pytest.raises(SimulationError):
        tracker.remove(2)


def test_tracker_add_after_done_is_error():
    env = Environment()
    tracker = WorkTracker(env)
    tracker.add(1)
    tracker.remove(1)
    with pytest.raises(SimulationError):
        tracker.add(1)


def test_tracker_negative_rejected():
    tracker = WorkTracker(Environment())
    with pytest.raises(ValueError):
        tracker.add(-1)
    with pytest.raises(ValueError):
        tracker.remove(-1)


def test_tracker_total_added():
    tracker = WorkTracker(Environment())
    tracker.add(5)
    tracker.remove(2)
    tracker.add(2)
    assert tracker.total_added == 7


# ------------------------------------------------------ DistributedQueues
def test_distributed_queues_local_and_recv():
    dq = DistributedQueues(2, 64, 64, num_recv_queues=2)
    dq[0].push_local(np.array([1, 2]))
    dq[1].push_recv(np.array([3]), src_pe=0)
    assert dq[0].readable == 2
    assert dq[1].readable == 1
    assert dq.total_readable == 3
    assert not dq.all_empty


def test_distributed_queues_pop_round_robin_drains_all():
    dq = DistributedQueues(1, 64, 64, num_recv_queues=2)
    dq[0].push_local(np.array([1]))
    dq[0].push_recv(np.array([2]), src_pe=0)
    dq[0].push_recv(np.array([3]), src_pe=1)
    got = set()
    for _ in range(3):
        got.update(dq[0].pop(1).tolist())
    assert got == {1, 2, 3}
    assert dq[0].empty


def test_distributed_queues_pop_respects_limit():
    dq = DistributedQueues(1, 64, 64)
    dq[0].push_local(np.arange(10))
    assert len(dq[0].pop(4)) == 4
    assert dq[0].readable == 6


def test_distributed_queues_recv_hashing():
    dq = DistributedQueues(1, 64, 64, num_recv_queues=2)
    dq[0].push_recv(np.array([1]), src_pe=0)
    dq[0].push_recv(np.array([2]), src_pe=1)
    assert dq[0].recv[0].readable == 1
    assert dq[0].recv[1].readable == 1


def test_distributed_queues_validation():
    with pytest.raises(ConfigurationError):
        DistributedQueues(0, 8, 8)
    with pytest.raises(ConfigurationError):
        DistributedQueues(1, 8, 8, num_recv_queues=0)
    dq = DistributedQueues(1, 8, 8)
    with pytest.raises(ValueError):
        dq[0].pop(-1)


# ------------------------------------------- DistributedPriorityQueues
def test_priority_queues_pop_lowest_first():
    dq = DistributedPriorityQueues(1, 64, 64)
    dq[0].push_local(np.array([10, 20]), np.array([5.0, 1.0]))
    dq[0].push_recv(np.array([30]), np.array([0.0]), src_pe=0)
    assert dq[0].pop(1).tolist() == [30]
    assert dq[0].pop(1).tolist() == [20]
    assert dq[0].pop(1).tolist() == [10]


def test_priority_queues_pop_lowest_bucket_drains_band():
    dq = DistributedPriorityQueues(1, 64, 64, num_recv_queues=2)
    dq[0].push_local(np.array([1, 2]), np.array([0.0, 0.0]))
    dq[0].push_recv(np.array([3]), np.array([0.0]), src_pe=0)
    dq[0].push_recv(np.array([9]), np.array([1.0]), src_pe=1)
    batch = dq[0].pop_lowest_bucket()
    assert sorted(batch.tolist()) == [1, 2, 3]
    assert dq[0].readable == 1


def test_priority_queues_pop_lowest_bucket_empty():
    dq = DistributedPriorityQueues(1, 64, 64)
    assert len(dq[0].pop_lowest_bucket()) == 0


def test_priority_queues_validation():
    with pytest.raises(ConfigurationError):
        DistributedPriorityQueues(0, 8, 8)
    dq = DistributedPriorityQueues(1, 8, 8)
    with pytest.raises(ValueError):
        dq[0].pop(-1)


# --------------------------------------------------------- Aggregator
def _collector():
    sent = []

    def send(dst, payloads, n_bytes):
        sent.append((dst, payloads, n_bytes))

    return sent, send


def test_aggregator_flushes_on_batch_size():
    sent, send = _collector()
    agg = Aggregator(0, 2, send, batch_size=100, wait_time=1000)
    agg.add(1, "a", 60)
    assert not sent
    agg.add(1, "b", 60)  # 120 >= 100
    assert len(sent) == 1
    dst, payloads, n_bytes = sent[0]
    assert dst == 1 and payloads == ["a", "b"] and n_bytes == 120
    assert agg.flushes_on_size == 1
    assert agg.empty


def test_aggregator_flushes_on_wait_time():
    sent, send = _collector()
    agg = Aggregator(0, 2, send, batch_size=1 << 20, wait_time=3)
    agg.add(1, "x", 8)
    agg.tick()
    agg.tick()
    assert not sent
    agg.tick()  # third visit
    assert len(sent) == 1
    assert agg.flushes_on_timeout == 1


def test_aggregator_wait_counter_resets_after_flush():
    sent, send = _collector()
    agg = Aggregator(0, 2, send, batch_size=1 << 20, wait_time=2)
    agg.add(1, "x", 8)
    agg.tick()
    agg.tick()
    assert len(sent) == 1
    agg.add(1, "y", 8)
    agg.tick()
    assert len(sent) == 1  # only one visit since refill
    agg.tick()
    assert len(sent) == 2


def test_aggregator_tick_skips_empty_buffers():
    sent, send = _collector()
    agg = Aggregator(0, 3, send, wait_time=1)
    agg.tick()
    assert not sent


def test_aggregator_flush_all():
    sent, send = _collector()
    agg = Aggregator(0, 3, send, batch_size=1 << 20, wait_time=1000)
    agg.add(1, "a", 8)
    agg.add(2, "b", 8)
    agg.flush_all()
    assert {s[0] for s in sent} == {1, 2}
    assert agg.pending_bytes == 0


def test_aggregator_separate_destinations():
    sent, send = _collector()
    agg = Aggregator(0, 3, send, batch_size=100, wait_time=1000)
    agg.add(1, "a", 60)
    agg.add(2, "b", 60)
    assert not sent  # per-destination accumulation
    assert agg.pending_bytes == 120


def test_aggregator_validation():
    _, send = _collector()
    with pytest.raises(ConfigurationError):
        Aggregator(0, 2, send, batch_size=0)
    with pytest.raises(ConfigurationError):
        Aggregator(0, 2, send, wait_time=0)
    agg = Aggregator(0, 2, send)
    with pytest.raises(ConfigurationError):
        agg.add(0, "self", 8)
