"""Property-based tests for the communication aggregator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Aggregator

# Scripts: sequence of ("add", dst, nbytes) / ("tick",) operations.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(1, 3), st.integers(1, 256)),
        st.tuples(st.just("tick")),
    ),
    max_size=80,
)


def _run(script, batch_size, wait_time):
    sent: list[tuple[int, list, int]] = []
    agg = Aggregator(
        0,
        4,
        lambda dst, payloads, n_bytes: sent.append(
            (dst, payloads, n_bytes)
        ),
        batch_size=batch_size,
        wait_time=wait_time,
    )
    added = []
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, ("payload", len(added)), nbytes)
            added.append((dst, nbytes))
        else:
            agg.tick()
    return agg, sent, added


@given(operations, st.integers(1, 512), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_no_update_lost_or_duplicated(script, batch, wait):
    agg, sent, added = _run(script, batch, wait)
    agg.flush_all()
    flushed = [p for _, payloads, _ in sent for p in payloads]
    assert len(flushed) == len(added)
    assert sorted(i for _, i in flushed) == list(range(len(added)))
    assert agg.empty and agg.pending_bytes == 0


@given(operations, st.integers(1, 512), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_bytes_conserved(script, batch, wait):
    agg, sent, added = _run(script, batch, wait)
    agg.flush_all()
    assert sum(n for _, _, n in sent) == sum(n for _, n in added)


@given(operations, st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_property_buffer_never_holds_full_batch(script, batch):
    """After any add, no buffer retains >= batch_size bytes."""
    sent = []
    agg = Aggregator(
        0, 4, lambda d, p, n: sent.append(n),
        batch_size=batch, wait_time=1 << 20,
    )
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, None, nbytes)
            for buffer in agg.buffers.values():
                assert buffer.n_bytes < batch or buffer.empty is False
                # Flush-on-size means a buffer can never *stay* at or
                # above the threshold after add() returns.
                assert buffer.n_bytes < batch


@given(operations)
@settings(max_examples=60, deadline=None)
def test_property_wait_time_bounds_buffer_age(script):
    """No buffer survives more than wait_time consecutive ticks."""
    agg = Aggregator(
        0, 4, lambda d, p, n: None, batch_size=1 << 30, wait_time=3
    )
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, None, nbytes)
        else:
            agg.tick()
        for buffer in agg.buffers.values():
            assert buffer.visits_since_first < 3 or buffer.empty
