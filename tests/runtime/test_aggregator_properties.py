"""Property-based tests for the communication aggregator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Aggregator
from repro.runtime.aggregator import MergedBatch

# Scripts: sequence of ("add", dst, nbytes) / ("tick",) operations.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(1, 3), st.integers(1, 256)),
        st.tuples(st.just("tick")),
    ),
    max_size=80,
)


def _run(script, batch_size, wait_time):
    sent: list[tuple[int, list, int]] = []
    agg = Aggregator(
        0,
        4,
        lambda dst, payloads, n_bytes: sent.append(
            (dst, payloads, n_bytes)
        ),
        batch_size=batch_size,
        wait_time=wait_time,
    )
    added = []
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, ("payload", len(added)), nbytes)
            added.append((dst, nbytes))
        else:
            agg.tick()
    return agg, sent, added


@given(operations, st.integers(1, 512), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_no_update_lost_or_duplicated(script, batch, wait):
    agg, sent, added = _run(script, batch, wait)
    agg.flush_all()
    flushed = [p for _, payloads, _ in sent for p in payloads]
    assert len(flushed) == len(added)
    assert sorted(i for _, i in flushed) == list(range(len(added)))
    assert agg.empty and agg.pending_bytes == 0


@given(operations, st.integers(1, 512), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_bytes_conserved(script, batch, wait):
    agg, sent, added = _run(script, batch, wait)
    agg.flush_all()
    assert sum(n for _, _, n in sent) == sum(n for _, n in added)


@given(operations, st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_property_buffer_never_holds_full_batch(script, batch):
    """After any add, no buffer retains >= batch_size bytes."""
    sent = []
    agg = Aggregator(
        0, 4, lambda d, p, n: sent.append(n),
        batch_size=batch, wait_time=1 << 20,
    )
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, None, nbytes)
            for buffer in agg.buffers.values():
                assert buffer.n_bytes < batch or buffer.empty is False
                # Flush-on-size means a buffer can never *stay* at or
                # above the threshold after add() returns.
                assert buffer.n_bytes < batch


# ------------------------------------------------ add_many equivalence
#: Runs of uniform (k, 2) array payloads plus occasional junk payloads
#: (forcing the list-mode fallback mid-run).
payload_runs = st.lists(
    st.lists(
        st.one_of(
            st.integers(0, 5),     # a (k, 2) int64 array of k rows
            st.just("junk"),       # a non-array payload
        ),
        min_size=1,
        max_size=12,
    ),
    max_size=10,
)


def _materialize(spec, counter):
    if spec == "junk":
        return ("junk", counter)
    return np.arange(2 * spec, dtype=np.int64).reshape(spec, 2) + counter


def _rows(payloads):
    """All update rows delivered by one send, as a list of tuples."""
    if isinstance(payloads, MergedBatch):
        return [tuple(r) for r in payloads.data]
    rows = []
    for p in payloads if isinstance(payloads, list) else [payloads]:
        if isinstance(p, np.ndarray):
            rows.extend(tuple(r) for r in p)
        else:
            rows.append(p)
    return rows


@given(payload_runs, st.integers(1, 400), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_add_many_equivalent_to_add_loop(runs, batch, wait):
    """``add_many`` must be observably identical to an ``add`` loop:

    same flush points (flush counters), same bytes per send, and the
    same update rows in the same order — whether a run stays uniform
    (bulk concatenate), crosses the flush threshold mid-run
    (segment splitting), or degrades to list mode on junk payloads.
    The loop side runs with ``vectorize=False`` (the escape-hatch
    reference), so this also pins list mode == array mode delivery.
    """
    sides = {}
    for mode in ("loop", "many"):
        sent = []
        agg = Aggregator(
            0,
            2,
            lambda dst, payloads, n_bytes: sent.append(
                (dst, _rows(payloads), n_bytes)
            ),
            batch_size=batch,
            wait_time=wait,
            vectorize=(mode == "many"),
        )
        counter = 0
        for run in runs:
            payloads = [_materialize(s, counter + i)
                        for i, s in enumerate(run)]
            counter += len(run)
            n_bytes = [
                max(1, 8 * p.size) if isinstance(p, np.ndarray) else 4
                for p in payloads
            ]
            if mode == "loop":
                for payload, nb in zip(payloads, n_bytes):
                    agg.add(1, payload, nb)
            else:
                agg.add_many(1, payloads, n_bytes)
            agg.tick()
        agg.flush_all()
        sides[mode] = (
            sent, agg.flushes_on_size, agg.flushes_on_timeout
        )
    assert sides["loop"] == sides["many"]


@given(operations)
@settings(max_examples=60, deadline=None)
def test_property_wait_time_bounds_buffer_age(script):
    """No buffer survives more than wait_time consecutive ticks."""
    agg = Aggregator(
        0, 4, lambda d, p, n: None, batch_size=1 << 30, wait_time=3
    )
    for op in script:
        if op[0] == "add":
            _, dst, nbytes = op
            agg.add(dst, None, nbytes)
        else:
            agg.tick()
        for buffer in agg.buffers.values():
            assert buffer.visits_since_first < 3 or buffer.empty
