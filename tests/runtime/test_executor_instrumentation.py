"""Tests for executor instrumentation: intervals, timelines, counters."""

import numpy as np

from repro.config import daisy, summit_ib
from repro.graph import largest_component_vertex, random_partition, rmat
from repro.apps import AtosBFS, AtosPageRank
from repro.runtime import AtosConfig, AtosExecutor


def _executor(machine, app_cls=AtosPageRank, **app_kwargs):
    g = rmat(scale=8, edge_factor=6, seed=13)
    part = random_partition(g, machine.n_gpus, seed=0)
    if app_cls is AtosBFS:
        app = AtosBFS(g, part, largest_component_vertex(g), **app_kwargs)
    else:
        app = app_cls(g, part, **app_kwargs)
    executor = AtosExecutor(machine, app, AtosConfig(fetch_size=2))
    executor.run()
    return executor


def test_compute_intervals_recorded():
    ex = _executor(daisy(2))
    assert ex.intervals.total("compute") > 0
    merged = ex.intervals.merged("compute")
    # Intervals are within the simulated horizon and well-formed.
    assert all(0 <= s < e <= ex.env.now + 1e-9 for s, e in merged)


def test_comm_intervals_match_fabric():
    ex = _executor(daisy(2))
    assert len(ex.fabric.transfer_intervals) == ex.fabric.total_messages
    assert ex.intervals.total("comm") > 0


def test_overlap_is_bounded_by_comm_total():
    ex = _executor(daisy(3))
    comm = ex.intervals.total("comm")
    hidden = ex.intervals.overlap("compute", "comm")
    assert 0 <= hidden <= comm + 1e-9


def test_timeline_matches_message_count():
    ex = _executor(summit_ib(2))
    assert len(ex.fabric.timeline) == ex.fabric.total_messages
    times = [t for t, _ in ex.fabric.timeline]
    assert times == sorted(times)
    assert sum(b for _, b in ex.fabric.timeline) == ex.fabric.total_bytes


def test_single_gpu_has_no_comm():
    ex = _executor(daisy(1))
    assert ex.fabric.total_messages == 0
    assert ex.intervals.total("comm") == 0.0
    assert ex.intervals.total("compute") > 0


def test_counters_cover_rounds_and_tasks():
    ex = _executor(daisy(2), app_cls=AtosBFS)
    assert ex.counters["rounds"] > 0
    assert ex.counters["tasks_processed"] >= ex.counters["rounds"]
    assert ex.counters["fabric_messages"] == ex.fabric.total_messages
