"""Failure injection: overflow, livelock, and misbehaving applications.

A production runtime must fail loudly and diagnosably, not hang or
corrupt state — these tests pin that behaviour.
"""

import numpy as np
import pytest

from repro.config import daisy
from repro.errors import ConfigurationError, QueueFullError, SimulationError
from repro.graph import largest_component_vertex, random_partition, rmat
from repro.apps import AtosBFS
from repro.runtime import (
    AtosApplication,
    AtosConfig,
    AtosExecutor,
    RoundOutcome,
)


class Bomb(AtosApplication):
    """App whose process() raises after N tasks."""

    name = "bomb"

    def __init__(self, fuse: int):
        self.fuse = fuse
        self.count = 0

    def setup(self, n_pes):
        seeds = [(np.empty(0, dtype=np.int64), None) for _ in range(n_pes)]
        seeds[0] = (np.arange(10, dtype=np.int64), None)
        return seeds

    def process(self, pe, tasks):
        self.count += len(tasks)
        if self.count >= self.fuse:
            raise RuntimeError("boom")
        return RoundOutcome()

    def handle_remote(self, pe, payload):
        return np.empty(0, dtype=np.int64), None


class Livelock(AtosApplication):
    """App that re-enqueues every task forever (never terminates)."""

    name = "livelock"

    def setup(self, n_pes):
        seeds = [(np.empty(0, dtype=np.int64), None) for _ in range(n_pes)]
        seeds[0] = (np.array([1], dtype=np.int64), None)
        return seeds

    def process(self, pe, tasks):
        return RoundOutcome(local_pushes=tasks.copy())

    def handle_remote(self, pe, payload):
        return np.empty(0, dtype=np.int64), None


def test_application_exception_propagates():
    with pytest.raises(RuntimeError, match="boom"):
        AtosExecutor(daisy(1), Bomb(fuse=5)).run()


def test_livelock_hits_safety_valve():
    config = AtosConfig(max_sim_time=1000.0)
    with pytest.raises(ConfigurationError, match="livelock"):
        AtosExecutor(daisy(1), Livelock(), config).run()


def test_queue_overflow_is_loud():
    # A queue too small for the frontier must raise, not wedge.
    g = rmat(scale=8, edge_factor=8, seed=1)
    src = largest_component_vertex(g)
    part = random_partition(g, 1, seed=0)
    app = AtosBFS(g, part, src)
    config = AtosConfig(queue_capacity=4)
    with pytest.raises(QueueFullError):
        AtosExecutor(daisy(1), app, config).run()


def test_state_remains_inspectable_after_failure():
    g = rmat(scale=7, edge_factor=4, seed=1)
    src = largest_component_vertex(g)
    part = random_partition(g, 2, seed=0)
    app = AtosBFS(g, part, src)
    executor = AtosExecutor(daisy(2), app, AtosConfig(queue_capacity=4))
    with pytest.raises(QueueFullError):
        executor.run()
    # Partial progress is observable for post-mortem analysis.
    assert executor.env.now >= 0.0
    assert app.result().shape == (g.n_vertices,)


def test_tracker_misuse_detected():
    from repro.sim import Environment
    from repro.runtime import WorkTracker

    tracker = WorkTracker(Environment())
    tracker.add(1)
    tracker.remove(1)
    with pytest.raises(SimulationError):
        tracker.remove(1)
