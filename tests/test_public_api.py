"""Public-API surface tests: documented entry points exist and the
package's advertised layering holds."""

import importlib
import inspect

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


SUBPACKAGES = [
    "repro.sim",
    "repro.gpu",
    "repro.interconnect",
    "repro.queues",
    "repro.pgas",
    "repro.runtime",
    "repro.apps",
    "repro.frameworks",
    "repro.graph",
    "repro.metrics",
    "repro.harness",
    "repro.faults",
    "repro.recovery",
    "repro.telemetry",
    "repro.tune",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_importable_with_all(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_symbols_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, name
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_readme_quickstart_names_exist():
    # The README quickstart imports these exact names.
    from repro.config import daisy  # noqa: F401
    from repro.graph import (  # noqa: F401
        bfs_grow_partition,
        largest_component_vertex,
        rmat,
    )
    from repro.apps import AtosBFS, reference_bfs  # noqa: F401
    from repro.runtime import AtosConfig, AtosExecutor  # noqa: F401


def test_sim_layer_is_domain_agnostic():
    # The DES engine must not import GPU/graph/runtime modules.
    import repro.sim.core as core
    import repro.sim.resources as resources

    for module in (core, resources):
        source = inspect.getsource(module)
        for forbidden in ("repro.gpu", "repro.graph", "repro.runtime",
                          "repro.apps", "repro.frameworks"):
            assert forbidden not in source, (module.__name__, forbidden)


def test_errors_hierarchy():
    from repro import errors

    for name in errors.__dict__:
        obj = getattr(errors, name)
        if inspect.isclass(obj) and issubclass(obj, Exception):
            if obj is errors.ReproError:
                continue
            assert issubclass(obj, errors.ReproError), name
