"""Unit tests for framework-driver internals: phase costing, timelines,
and the bulk-exchange model."""

import numpy as np
import pytest

from repro.config import CostModel, daisy, summit_ib
from repro.gpu.memory import MemoryModel
from repro.graph import largest_component_vertex, random_partition, rmat
from repro.frameworks import (
    AtosDriver,
    GaloisLikeDriver,
    GunrockLikeDriver,
    bulk_exchange_time,
)
from repro.frameworks.bulk_async import GLUON_PER_PEER_US, GLUON_ROUND_HOST_US


# ----------------------------------------------------- bulk exchange
def test_bulk_exchange_empty_matrix_is_free():
    machine = daisy(4)
    matrix = np.zeros((4, 4), dtype=np.int64)
    assert bulk_exchange_time(machine, matrix, 8, 10.0) == 0.0


def test_bulk_exchange_slowest_link_dominates():
    machine = daisy(4)
    matrix = np.zeros((4, 4), dtype=np.int64)
    matrix[0, 1] = 1000  # over a 25 GB/s link
    matrix[0, 3] = 1000  # over a 50 GB/s link
    t = bulk_exchange_time(machine, matrix, 8, 0.0)
    slow_link = machine.link(0, 1)
    expected = slow_link.latency + 1000 * 8 / slow_link.bandwidth
    assert t == pytest.approx(expected)


def test_bulk_exchange_charges_control_latency():
    machine = daisy(2)
    matrix = np.array([[0, 10], [0, 0]], dtype=np.int64)
    base = bulk_exchange_time(machine, matrix, 8, 0.0)
    with_control = bulk_exchange_time(machine, matrix, 8, 10.0)
    assert with_control == pytest.approx(base + 10.0)


def test_bulk_exchange_ib_overhead():
    machine = summit_ib(2)
    matrix = np.array([[0, 10], [0, 0]], dtype=np.int64)
    base = bulk_exchange_time(machine, matrix, 8, 0.0)
    with_nic = bulk_exchange_time(machine, matrix, 8, 0.0, 2.0)
    assert with_nic == pytest.approx(base + 2.0)


# ------------------------------------------------- gunrock phase model
def test_gunrock_phase_time_components():
    machine = daisy(2)
    memory = MemoryModel(machine.gpu, machine.cost)
    driver = GunrockLikeDriver()
    edges = np.array([2000, 1000])
    items = np.array([10, 5])
    no_comm = np.zeros((2, 2), dtype=np.int64)
    total, pre_comm, comm_bytes = driver._phase_time(
        machine, memory, edges, items, no_comm
    )
    assert comm_bytes == 0.0
    assert total == pre_comm
    # max-PE compute (slowest GPU) plus launch + sync.
    expected = (
        machine.cost.kernel_launch_overhead
        + memory.edge_batch_time(2000)
        + memory.queue_ops_time(10)
        + machine.cost.cpu_sync_overhead
    )
    assert total == pytest.approx(expected)


def test_gunrock_phase_with_comm_adds_merge_kernel():
    machine = daisy(2)
    memory = MemoryModel(machine.gpu, machine.cost)
    driver = GunrockLikeDriver()
    edges = np.array([100, 100])
    items = np.array([1, 1])
    comm = np.array([[0, 50], [50, 0]], dtype=np.int64)
    total, pre_comm, comm_bytes = driver._phase_time(
        machine, memory, edges, items, comm
    )
    assert comm_bytes == 100 * machine.cost.bytes_per_remote_update
    assert total > pre_comm + machine.cost.kernel_launch_overhead


def test_gunrock_timeline_one_burst_per_communicating_phase():
    g = rmat(scale=8, edge_factor=6, seed=3)
    src = largest_component_vertex(g)
    part = random_partition(g, 2, seed=0)
    result = GunrockLikeDriver().run_bfs(g, part, src, daisy(2))
    assert result.timeline is not None
    # At most one burst per level, strictly increasing times.
    assert len(result.timeline) <= result.counters["levels"]
    times = [t for t, _ in result.timeline]
    assert times == sorted(times)
    total_bytes = sum(b for _, b in result.timeline)
    assert total_bytes == (
        result.counters["remote_updates"]
        * daisy(2).cost.bytes_per_remote_update
    )


def test_atos_timeline_many_small_events():
    g = rmat(scale=11, edge_factor=8, seed=3)
    src = largest_component_vertex(g)
    part = random_partition(g, 2, seed=0)
    atos = AtosDriver().run_bfs(g, part, src, daisy(2))
    gunrock = GunrockLikeDriver().run_bfs(g, part, src, daisy(2))
    assert atos.timeline is not None
    # Atos spreads communication over many small sends; BSP bursts
    # once per level.
    assert len(atos.timeline) > 3 * len(gunrock.timeline)
    mean_atos = np.mean([b for _, b in atos.timeline])
    mean_gunrock = np.mean([b for _, b in gunrock.timeline])
    assert mean_atos < mean_gunrock


# -------------------------------------------------------- galois model
def test_galois_round_overhead_scales_with_peers():
    g = rmat(scale=8, edge_factor=6, seed=3)
    src = largest_component_vertex(g)
    driver = GaloisLikeDriver()
    t2 = driver.run_bfs(
        g, random_partition(g, 2, seed=0), src, summit_ib(2)
    )
    t8 = driver.run_bfs(
        g, random_partition(g, 8, seed=0), src, summit_ib(8)
    )
    levels = t2.counters["levels"]
    # Going 2 -> 8 GPUs adds >= 6 * GLUON_PER_PEER_US per round of
    # per-peer setup; compute shrinks, so the total must grow at least
    # by a meaningful fraction of that.
    added_overhead_ms = levels * 6 * GLUON_PER_PEER_US / 1000
    assert t8.time_ms > t2.time_ms + 0.3 * added_overhead_ms


def test_galois_single_gpu_still_pays_round_host_cost():
    g = rmat(scale=8, edge_factor=6, seed=3)
    src = largest_component_vertex(g)
    galois = GaloisLikeDriver().run_bfs(
        g, random_partition(g, 1, seed=0), src, summit_ib(1)
    )
    floor_ms = galois.counters["levels"] * GLUON_ROUND_HOST_US / 1000
    assert galois.time_ms >= floor_ms
