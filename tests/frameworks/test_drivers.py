"""Framework driver tests: correctness everywhere, and the paper's
qualitative performance relationships (who wins where)."""

import numpy as np
import pytest

from repro.config import daisy, summit_ib
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    bfs_grow_partition,
    grid_mesh,
    largest_component_vertex,
    random_partition,
    rmat,
)
from repro.apps import pagerank_close, reference_bfs, reference_pagerank
from repro.frameworks import (
    AtosDriver,
    GaloisLikeDriver,
    GrouteLikeDriver,
    GunrockLikeDriver,
)


@pytest.fixture(scope="module")
def scale_free():
    g = rmat(scale=9, edge_factor=8, seed=21)
    return g, largest_component_vertex(g)


@pytest.fixture(scope="module")
def mesh():
    return grid_mesh(24, 24, seed=21), 0


ALL_DRIVERS = [
    GunrockLikeDriver,
    GrouteLikeDriver,
    GaloisLikeDriver,
    lambda: AtosDriver(kernel=KernelStrategy.PERSISTENT),
    lambda: AtosDriver(kernel=KernelStrategy.DISCRETE, priority=True),
]


@pytest.mark.parametrize("make_driver", ALL_DRIVERS)
@pytest.mark.parametrize("n_gpus", [1, 3])
def test_bfs_correct_all_drivers(make_driver, n_gpus, scale_free):
    g, src = scale_free
    part = random_partition(g, n_gpus, seed=0)
    result = make_driver().run_bfs(g, part, src, daisy(n_gpus))
    assert np.array_equal(np.asarray(result.output), reference_bfs(g, src))
    assert result.time_ms > 0
    assert result.n_gpus == n_gpus


@pytest.mark.parametrize("make_driver", ALL_DRIVERS)
def test_pagerank_correct_all_drivers(make_driver, scale_free):
    g, _ = scale_free
    part = random_partition(g, 2, seed=0)
    result = make_driver().run_pagerank(g, part, daisy(2), epsilon=1e-4)
    assert pagerank_close(
        np.asarray(result.output), reference_pagerank(g, epsilon=1e-4)
    )


def test_driver_names():
    assert GunrockLikeDriver().name == "gunrock"
    assert GrouteLikeDriver().name == "groute"
    assert GaloisLikeDriver().name == "galois"
    assert AtosDriver().name == "atos-standard-persistent"
    assert (
        AtosDriver(kernel=KernelStrategy.DISCRETE, priority=True).name
        == "atos-priority-discrete"
    )


# -------------------------------------------------- qualitative shapes
def test_atos_beats_gunrock_on_mesh_bfs(mesh):
    """Paper Table II: Atos-persistent >= ~10x Gunrock on mesh BFS."""
    g, src = mesh
    part = bfs_grow_partition(g, 4, seed=0)
    atos = AtosDriver().run_bfs(g, part, src, daisy(4))
    gunrock = GunrockLikeDriver().run_bfs(g, part, src, daisy(4))
    assert gunrock.time_ms > 4 * atos.time_ms


def test_groute_between_gunrock_and_atos_on_mesh_bfs(mesh):
    g, src = mesh
    part = bfs_grow_partition(g, 4, seed=0)
    atos = AtosDriver().run_bfs(g, part, src, daisy(4)).time_ms
    groute = GrouteLikeDriver().run_bfs(g, part, src, daisy(4)).time_ms
    gunrock = GunrockLikeDriver().run_bfs(g, part, src, daisy(4)).time_ms
    assert atos < groute < gunrock


def test_atos_beats_gunrock_on_pagerank(scale_free):
    """Paper Table IV: Atos ~2-3x over Gunrock on PageRank."""
    g, _ = scale_free
    part = bfs_grow_partition(g, 4, seed=0)
    atos = AtosDriver().run_pagerank(g, part, daisy(4))
    gunrock = GunrockLikeDriver().run_pagerank(g, part, daisy(4))
    assert gunrock.time_ms > 1.3 * atos.time_ms


def test_galois_ib_bfs_much_slower_on_mesh(mesh):
    """Paper Table V: Atos 2-3 orders of magnitude over Galois on mesh."""
    g, src = mesh
    part = bfs_grow_partition(g, 4, seed=0)
    machine = summit_ib(4)
    atos = AtosDriver().run_bfs(g, part, src, machine)
    galois = GaloisLikeDriver().run_bfs(g, part, src, machine)
    assert galois.time_ms > 10 * atos.time_ms


def test_galois_does_not_scale_atos_does():
    """Paper Fig 8: Galois slows down with more GPUs; Atos holds or
    improves.  Needs a graph big enough that 8 GPUs have work to hide
    the IB latency behind (the paper's point exactly)."""
    g = rmat(scale=13, edge_factor=8, seed=21)
    src = largest_component_vertex(g)
    galois_1 = GaloisLikeDriver().run_bfs(
        g, random_partition(g, 1, seed=0), src, summit_ib(1)
    ).time_ms
    galois_8 = GaloisLikeDriver().run_bfs(
        g, random_partition(g, 8, seed=0), src, summit_ib(8)
    ).time_ms
    assert galois_8 > galois_1
    atos_1 = AtosDriver().run_bfs(
        g, random_partition(g, 1, seed=0), src, summit_ib(1)
    ).time_ms
    atos_8 = AtosDriver().run_bfs(
        g, random_partition(g, 8, seed=0), src, summit_ib(8)
    ).time_ms
    assert atos_8 < atos_1


def test_priority_discrete_is_poor_on_mesh(mesh):
    """Paper Table II: discrete+priority ~4x worse than persistent on
    mesh-like datasets (launch overhead on tiny frontiers)."""
    g, src = mesh
    part = bfs_grow_partition(g, 2, seed=0)
    persistent = AtosDriver().run_bfs(g, part, src, daisy(2)).time_ms
    priority = AtosDriver(
        kernel=KernelStrategy.DISCRETE, priority=True
    ).run_bfs(g, part, src, daisy(2)).time_ms
    assert priority > 2 * persistent


def test_counters_present(scale_free):
    g, src = scale_free
    part = random_partition(g, 2, seed=0)
    gunrock = GunrockLikeDriver().run_bfs(g, part, src, daisy(2))
    assert gunrock.counters["levels"] > 0
    galois = GaloisLikeDriver().run_bfs(g, part, src, daisy(2))
    assert galois.counters["levels"] > 0
    atos = AtosDriver().run_bfs(g, part, src, daisy(2))
    assert atos.counters["vertices_visited"] > 0


def test_run_result_speedup():
    from repro.metrics.counters import RunResult

    a = RunResult("a", "bfs", "d", 1, time_ms=2.0)
    b = RunResult("b", "bfs", "d", 1, time_ms=6.0)
    assert a.speedup_over(b) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        RunResult("c", "bfs", "d", 1, time_ms=0.0).speedup_over(a)
