"""Tests for the PGAS substrate: heap, one-sided ops, teams, dist arrays."""

import numpy as np
import pytest

from repro.config import daisy, summit_ib
from repro.errors import PGASError
from repro.graph import random_partition, rmat
from repro.interconnect import NetworkFabric
from repro.pgas import DistributedArray, RemoteOps, SymmetricHeap, Team
from repro.sim import Environment


# ---------------------------------------------------------------- heap
def test_heap_malloc_symmetric():
    heap = SymmetricHeap(3)
    arr = heap.malloc("depth", 10, dtype=np.int32, fill=7)
    for pe in range(3):
        buf = arr.local(pe)
        assert buf.shape == (10,)
        assert buf.dtype == np.int32
        assert np.all(buf == 7)
    # Buffers are distinct per PE.
    arr.local(0)[0] = 1
    assert arr.local(1)[0] == 7


def test_heap_malloc_partitioned():
    heap = SymmetricHeap(2)
    arr = heap.malloc_partitioned("slices", [3, 5], dtype=np.float64)
    assert arr.size(0) == 3 and arr.size(1) == 5


def test_heap_name_collision():
    heap = SymmetricHeap(2)
    heap.malloc("x", 4)
    with pytest.raises(PGASError):
        heap.malloc("x", 4)


def test_heap_get_and_free():
    heap = SymmetricHeap(2)
    arr = heap.malloc("x", 4)
    assert heap.get("x") is arr
    assert "x" in heap
    heap.free("x")
    assert "x" not in heap
    with pytest.raises(PGASError):
        heap.get("x")
    with pytest.raises(PGASError):
        heap.free("x")


def test_heap_validation():
    with pytest.raises(PGASError):
        SymmetricHeap(0)
    heap = SymmetricHeap(2)
    with pytest.raises(PGASError):
        heap.malloc_partitioned("bad", [1, 2, 3])
    arr = heap.malloc("x", 4)
    with pytest.raises(PGASError):
        arr.local(5)


# ------------------------------------------------------------ remote ops
def _setup(machine=None):
    env = Environment()
    fabric = NetworkFabric(env, machine or daisy(2))
    heap = SymmetricHeap(fabric.machine.n_gpus)
    ops = RemoteOps(fabric)
    return env, fabric, heap, ops


def test_put_local_is_immediate():
    env, _f, heap, ops = _setup()
    arr = heap.malloc("x", 4, dtype=np.int64)
    ops.put(0, 0, arr, np.array([1, 2]), np.array([10, 20]))
    assert list(arr.local(0)) == [0, 10, 20, 0]
    assert env.now == 0.0
    assert ops.counters.local_ops == 1


def test_put_remote_applies_at_arrival():
    env, _f, heap, ops = _setup()
    arr = heap.malloc("x", 4, dtype=np.int64)
    ops.put(0, 1, arr, np.array([0]), np.array([42]))
    assert arr.local(1)[0] == 0  # not yet arrived
    env.run()
    assert arr.local(1)[0] == 42
    assert env.now > 0
    assert ops.counters.puts == 1


def test_get_round_trip():
    env, _f, heap, ops = _setup()
    arr = heap.malloc("x", 4, dtype=np.int64)
    arr.local(1)[...] = [1, 2, 3, 4]
    received = []
    ops.get(0, 1, arr, np.array([1, 3]), lambda data: received.append(data))
    env.run()
    assert len(received) == 1
    assert list(received[0]) == [2, 4]


def test_get_local_immediate():
    _env, _f, heap, ops = _setup()
    arr = heap.malloc("x", 2, dtype=np.int64)
    arr.local(0)[...] = [5, 6]
    out = []
    ops.get(0, 0, arr, np.array([1]), lambda d: out.append(d))
    assert list(out[0]) == [6]


def test_remote_atomic_min_applies_and_reports_old():
    env, _f, heap, ops = _setup()
    arr = heap.malloc("depth", 3, dtype=np.int64, fill=100)
    olds = []
    ops.atomic_min(
        0, 1, arr, np.array([0, 1]), np.array([5, 200]),
        on_old=lambda old: olds.append(old),
    )
    env.run()
    assert list(arr.local(1)) == [5, 100, 100]
    assert list(olds[0]) == [100, 100]


def test_remote_atomic_add():
    env, _f, heap, ops = _setup()
    arr = heap.malloc("residual", 2, dtype=np.float64)
    ops.atomic_add(0, 1, arr, np.array([0, 0]), np.array([1.5, 2.5]))
    env.run()
    assert arr.local(1)[0] == pytest.approx(4.0)


def test_remote_op_validation():
    _env, _f, heap, ops = _setup()
    arr = heap.malloc("x", 3, dtype=np.int64)
    with pytest.raises(PGASError):
        ops.put(0, 1, arr, np.array([5]), np.array([1]))
    with pytest.raises(PGASError):
        ops.put(0, 1, arr, np.array([0, 1]), np.array([1]))


def test_extra_latency_delays_arrival():
    env1, _f, heap1, ops1 = _setup()
    arr1 = heap1.malloc("x", 1, dtype=np.int64)
    t_fast = ops1.put(0, 1, arr1, np.array([0]), np.array([1]))
    env2, _f2, heap2, ops2 = _setup()
    arr2 = heap2.malloc("x", 1, dtype=np.int64)
    t_slow = ops2.put(
        0, 1, arr2, np.array([0]), np.array([1]), extra_latency=50.0
    )
    assert t_slow == pytest.approx(t_fast + 50.0)


# ------------------------------------------------------------------ team
def test_team_barrier_releases_together():
    env = Environment()
    team = Team(env, 3)
    releases = []

    def pe_proc(env, pe, delay):
        yield env.timeout(delay)
        yield team.barrier(pe)
        releases.append((env.now, pe))

    for pe, delay in enumerate([1.0, 5.0, 3.0]):
        env.process(pe_proc(env, pe, delay))
    env.run()
    assert [t for t, _ in releases] == [5.0, 5.0, 5.0]
    assert team.generation == 1


def test_team_allreduce():
    env = Environment()
    team = Team(env, 3)
    results = []

    def pe_proc(env, pe):
        yield env.timeout(pe * 1.0)
        total = yield team.allreduce(pe, pe + 1, lambda a, b: a + b)
        results.append(total)

    for pe in range(3):
        env.process(pe_proc(env, pe))
    env.run()
    assert results == [6, 6, 6]


def test_team_repeated_barriers():
    env = Environment()
    team = Team(env, 2)
    log = []

    def pe_proc(env, pe):
        for round_idx in range(3):
            yield env.timeout(1.0 + pe)
            yield team.barrier(pe)
            log.append((round_idx, pe))

    env.process(pe_proc(env, 0))
    env.process(pe_proc(env, 1))
    env.run()
    assert team.generation == 3
    rounds = [r for r, _ in log]
    assert rounds == sorted(rounds)


def test_team_validation():
    env = Environment()
    with pytest.raises(PGASError):
        Team(env, 0)
    team = Team(env, 2)
    with pytest.raises(PGASError):
        team.barrier(2)


# ------------------------------------------------------ distributed array
def test_distributed_array_round_trip():
    graph = rmat(scale=6, edge_factor=4, seed=1)
    part = random_partition(graph, 3, seed=0)
    heap = SymmetricHeap(3)
    arr = DistributedArray(heap, "rank", part, dtype=np.float64, fill=0.5)
    values = np.arange(graph.n_vertices, dtype=np.float64)
    arr.scatter_global(values)
    assert np.array_equal(arr.gather_global(), values)


def test_distributed_array_locate():
    graph = rmat(scale=5, edge_factor=4, seed=1)
    part = random_partition(graph, 2, seed=0)
    heap = SymmetricHeap(2)
    arr = DistributedArray(heap, "x", part, dtype=np.int64)
    owners, local = arr.locate(np.arange(graph.n_vertices))
    assert np.array_equal(owners, part.owner)
    for v in range(graph.n_vertices):
        assert part.part_vertices[owners[v]][local[v]] == v


def test_distributed_atomic_min_routes_by_owner():
    env = Environment()
    fabric = NetworkFabric(env, daisy(2))
    graph = rmat(scale=5, edge_factor=4, seed=1)
    part = random_partition(graph, 2, seed=0)
    heap = SymmetricHeap(2)
    ops = RemoteOps(fabric)
    arr = DistributedArray(heap, "depth", part, dtype=np.int64, fill=99)
    idx = np.arange(8)
    arr.atomic_min_from(ops, 0, idx, np.full(8, 3))
    env.run()
    assert np.all(arr.gather_global()[:8] == 3)
    assert np.all(arr.gather_global()[8:] == 99)


def test_distributed_array_validation():
    graph = rmat(scale=5, edge_factor=4, seed=1)
    part = random_partition(graph, 2, seed=0)
    heap = SymmetricHeap(3)
    with pytest.raises(PGASError):
        DistributedArray(heap, "x", part)
    heap2 = SymmetricHeap(2)
    arr = DistributedArray(heap2, "x", part)
    with pytest.raises(PGASError):
        arr.locate(np.array([graph.n_vertices]))
    with pytest.raises(PGASError):
        arr.scatter_global(np.zeros(3))
