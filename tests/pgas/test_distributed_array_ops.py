"""Additional DistributedArray coverage: add-routing and callbacks."""

import numpy as np
import pytest

from repro.config import daisy
from repro.graph import random_partition, rmat
from repro.interconnect import NetworkFabric
from repro.pgas import DistributedArray, RemoteOps, SymmetricHeap
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    fabric = NetworkFabric(env, daisy(3))
    graph = rmat(scale=5, edge_factor=4, seed=2)
    part = random_partition(graph, 3, seed=0)
    heap = SymmetricHeap(3)
    ops = RemoteOps(fabric)
    return env, graph, part, heap, ops


def test_atomic_add_from_routes_by_owner(setup):
    env, graph, part, heap, ops = setup
    arr = DistributedArray(heap, "residual", part, dtype=np.float64)
    idx = np.arange(graph.n_vertices)
    arr.atomic_add_from(ops, 0, idx, np.ones(graph.n_vertices))
    env.run()
    assert np.allclose(arr.gather_global(), 1.0)


def test_atomic_add_from_accumulates_duplicates(setup):
    env, graph, part, heap, ops = setup
    arr = DistributedArray(heap, "x", part, dtype=np.float64)
    target = np.array([0, 0, 0])
    arr.atomic_add_from(ops, 1, target, np.array([1.0, 2.0, 3.0]))
    env.run()
    assert arr.gather_global()[0] == pytest.approx(6.0)


def test_atomic_min_from_on_old_callback_per_destination(setup):
    env, graph, part, heap, ops = setup
    arr = DistributedArray(heap, "depth", part, dtype=np.int64, fill=50)
    seen: list[tuple[int, int]] = []
    arr.atomic_min_from(
        ops,
        0,
        np.arange(6),
        np.full(6, 7),
        on_old=lambda pe, rows, old: seen.append((pe, len(rows))),
    )
    env.run()
    touched_pes = {pe for pe, _ in seen}
    assert touched_pes == set(np.unique(part.owner[:6]).tolist())
    assert sum(n for _, n in seen) == 6
    assert np.all(arr.gather_global()[:6] == 7)


def test_local_ops_apply_without_sim_time(setup):
    env, graph, part, heap, ops = setup
    arr = DistributedArray(heap, "y", part, dtype=np.float64)
    pe0_verts = part.part_vertices[0][:2]
    arr.atomic_add_from(ops, 0, pe0_verts, np.ones(len(pe0_verts)))
    # Owner == source: applied immediately, no events scheduled.
    assert env.peek() == float("inf")
    assert np.all(arr.gather_global()[pe0_verts] == 1.0)


def test_fill_and_local_slice(setup):
    _env, graph, part, heap, _ops = setup
    arr = DistributedArray(heap, "z", part, dtype=np.int64, fill=3)
    assert np.all(arr.gather_global() == 3)
    arr.local_slice(1)[...] = 9
    assert np.all(arr.gather_global()[part.part_vertices[1]] == 9)
    arr.fill(0)
    assert np.all(arr.gather_global() == 0)
