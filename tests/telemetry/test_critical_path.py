"""Critical-path walker: hand-built chains and walk invariants."""

import pytest

from repro.telemetry import Telemetry, critical_path
from tests.telemetry.helpers import traced_run


# ------------------------------------------------------- hand-built paths
def test_empty_telemetry_yields_empty_path():
    path = critical_path(Telemetry(2), makespan=10.0)
    assert path.segments == []
    assert path.path_time_us == 0.0
    assert path.complete


def test_cross_rank_chain_is_fully_attributed():
    hub = Telemetry(2)
    hub.span(0, "compute", 0.0, 5.0, "produce")
    hub.edge(0, 1, 5.0, 7.0)
    hub.span(1, "compute", 7.0, 12.0, "consume")
    path = critical_path(hub, makespan=12.0)
    assert [seg.kind for seg in path.segments] == ["span", "msg", "span"]
    assert [seg.rank for seg in path.segments] == [0, 1, 1]
    assert path.path_time_us == pytest.approx(12.0)
    assert path.complete


def test_late_pop_shows_up_as_wait_segment():
    hub = Telemetry(2)
    hub.span(0, "compute", 0.0, 5.0)
    hub.edge(0, 1, 5.0, 7.0)
    hub.span(1, "compute", 9.0, 12.0)  # popped 2 us after arrival
    path = critical_path(hub, makespan=12.0)
    kinds = [seg.kind for seg in path.segments]
    assert kinds == ["span", "msg", "wait", "span"]
    wait = path.segments[2]
    assert wait.start == pytest.approx(7.0)
    assert wait.end == pytest.approx(9.0)
    assert path.by_category()["wait"] == pytest.approx(2.0)


def test_same_rank_chain_walks_previous_spans():
    hub = Telemetry(1)
    hub.span(0, "compute", 0.0, 3.0, "r0")
    hub.span(0, "queue", 3.0, 4.0, "q0")
    hub.span(0, "compute", 4.0, 9.0, "r1")
    path = critical_path(hub, makespan=9.0)
    assert [seg.name for seg in path.segments] == ["r0", "q0", "r1"]
    assert path.path_time_us == pytest.approx(9.0)


def test_truncated_telemetry_marks_path_incomplete():
    hub = Telemetry(1, max_spans_per_rank=2)
    for i in range(5):
        hub.span(0, "compute", float(i), float(i) + 1.0)
    path = critical_path(hub, makespan=5.0)
    assert hub.truncated
    assert not path.complete


def test_top_segments_sorted_longest_first():
    hub = Telemetry(1)
    hub.span(0, "compute", 0.0, 1.0)
    hub.span(0, "compute", 1.0, 6.0)
    hub.span(0, "compute", 6.0, 8.0)
    path = critical_path(hub, makespan=8.0)
    tops = path.top_segments(2)
    assert len(tops) == 2
    assert tops[0].duration >= tops[1].duration
    assert tops[0].duration == pytest.approx(5.0)


def test_render_mentions_path_and_makespan():
    hub = Telemetry(1)
    hub.span(0, "compute", 0.0, 4.0, "round")
    text = critical_path(hub, makespan=4.0).render(top_k=3)
    assert "critical path" in text and "4.0 us makespan" in text


# --------------------------------------------------------- walk invariants
def test_walk_invariants_on_real_run():
    executor, makespan, _ = traced_run(hops=14, n_gpus=4)
    path = critical_path(executor.telemetry, makespan)
    assert path.segments, "a real run must have a critical path"
    assert path.complete

    # Property 1: attributed time never exceeds the makespan.
    assert path.path_time_us <= makespan + 1e-6

    # Property 2: segments are chronological and non-overlapping.
    for before, after in zip(path.segments, path.segments[1:]):
        assert before.end <= after.start + 1e-6

    # Property 3: category totals sum to the attributed path time.
    assert sum(path.by_category().values()) == pytest.approx(
        path.path_time_us
    )

    # Property 4: the path ends at the end of the last work span.
    assert path.segments[-1].end <= makespan + 1e-6
    assert path.segments[0].start >= -1e-6
