"""Utilization reports: makespan tiling, imbalance stats, rendering."""

import pytest

from repro.metrics import utilization_table
from repro.telemetry import (
    TIMELINE_CATEGORIES,
    Telemetry,
    build_report,
    imbalance_stats,
    phase_breakdown,
    rank_breakdown,
)
from tests.telemetry.helpers import traced_run


def _hub():
    hub = Telemetry(2)
    hub.span(0, "compute", 0.0, 6.0)
    hub.span(0, "queue", 6.0, 7.0)
    hub.span(0, "comm", 1.0, 3.0)
    hub.span(1, "compute", 2.0, 4.0)
    return hub


def _timeline_sum(row):
    return sum(row[cat] for cat in TIMELINE_CATEGORIES)


# ------------------------------------------------------------- breakdown
def test_rank_breakdown_tiles_makespan():
    per_rank = rank_breakdown(_hub(), makespan=10.0)
    # rank0: 6 compute + 1 queue + 3 folded idle; rank1: 2 + 8 idle.
    assert per_rank[0]["idle"] == pytest.approx(3.0)
    assert per_rank[1]["idle"] == pytest.approx(8.0)
    for row in per_rank.values():
        assert _timeline_sum(row) == pytest.approx(10.0)
    # Overlay categories sit outside the tiling sum.
    assert per_rank[0]["comm"] == pytest.approx(2.0)


def test_phase_breakdown_sums_over_ranks():
    phases = phase_breakdown(_hub(), makespan=10.0)
    assert phases["compute"] == pytest.approx(8.0)
    timeline_total = sum(phases[cat] for cat in TIMELINE_CATEGORIES)
    assert timeline_total == pytest.approx(2 * 10.0)


# ------------------------------------------------------------- imbalance
def test_imbalance_stats_known_values():
    per_rank = {
        0: {"compute": 10.0, "queue": 0.0},
        1: {"compute": 30.0, "queue": 0.0},
    }
    stats = imbalance_stats(per_rank)
    assert stats["imbalance"] == pytest.approx(1.5)  # 30 / mean(20)
    assert stats["busy_max_us"] == pytest.approx(30.0)
    assert stats["busy_mean_us"] == pytest.approx(20.0)


def test_imbalance_stats_all_idle_is_balanced():
    stats = imbalance_stats({0: {"compute": 0.0}, 1: {"compute": 0.0}})
    assert stats["imbalance"] == 1.0 and stats["cv"] == 0.0


# ------------------------------------------------------------- rendering
def test_utilization_table_percentages():
    per_rank = rank_breakdown(_hub(), makespan=10.0)
    table = utilization_table(per_rank, 10.0)
    assert "rank" in table and "compute" in table
    assert "60.0%" in table  # rank0 compute 6/10
    assert "makespan 10.0 us" in table


def test_build_report_renders_without_warning():
    hub = _hub()
    report = build_report(hub, 10.0, knobs={"wait_time": 4.0})
    assert not report.truncated
    text = report.render()
    assert "load imbalance" in text
    assert "wait_time=4" in text
    assert "TRUNCATED" not in text


def test_truncated_report_warns_loudly():
    hub = Telemetry(1, max_spans_per_rank=2)
    for i in range(5):
        hub.span(0, "compute", float(i), float(i) + 1.0)
    report = build_report(hub, 5.0)
    assert report.truncated
    assert "WARNING: TIMELINE TRUNCATED" in report.render()


# ----------------------------------------------- executor integration
def test_real_run_breakdown_tiles_makespan():
    executor, makespan, _ = traced_run(hops=12, n_gpus=4)
    per_rank = rank_breakdown(executor.telemetry, makespan)
    for row in per_rank.values():
        assert _timeline_sum(row) == pytest.approx(makespan, abs=1.0)
