"""Perfetto export: schema validity, lane mapping, gap-filled timelines."""

import json

import pytest

from repro.telemetry import (
    TIMELINE_CATEGORIES,
    TRACE_SCHEMA,
    Telemetry,
    to_trace_events,
    validate_trace_events,
    write_trace,
)
from tests.telemetry.helpers import traced_run


def _small_hub():
    hub = Telemetry(2)
    hub.span(0, "compute", 0.0, 5.0, "round", n_bytes=128, n_items=4)
    hub.span(0, "comm", 1.0, 3.0, "link0->1", n_bytes=64)
    hub.span(0, "agg_wait", 0.5, 4.0, "agg->pe1")
    hub.span(1, "queue", 2.0, 4.0, "queue-ops")
    return hub


def _timeline_sum(events, pid):
    timeline = set(TIMELINE_CATEGORIES)
    return sum(
        e["dur"]
        for e in events
        if e["pid"] == pid and e["tid"] == 0 and e["cat"] in timeline
    )


# ---------------------------------------------------------------- schema
def test_every_event_passes_schema():
    doc = to_trace_events(_small_hub(), makespan=10.0)
    count = validate_trace_events(doc)
    assert count == len(doc["traceEvents"]) > 0
    for event in doc["traceEvents"]:
        assert event["ph"] == "X"
        assert event["dur"] >= 0 and event["ts"] >= 0


def test_other_data_carries_schema_tag():
    doc = to_trace_events(_small_hub(), makespan=10.0)
    other = doc["otherData"]
    assert other["schema"] == TRACE_SCHEMA
    assert other["makespan_us"] == 10.0
    assert other["n_ranks"] == 2
    assert other["spans_recorded"] == 4
    assert other["spans_evicted"] == 0


def test_overlay_categories_get_their_own_lanes():
    doc = to_trace_events(_small_hub(), makespan=10.0)
    tids = {e["cat"]: e["tid"] for e in doc["traceEvents"]}
    assert tids["compute"] == 0 and tids["queue"] == 0
    assert tids["comm"] != 0 and tids["agg_wait"] != 0
    assert tids["comm"] != tids["agg_wait"]


def test_gap_fill_makes_timeline_tile_makespan():
    doc = to_trace_events(_small_hub(), makespan=10.0)
    events = doc["traceEvents"]
    # rank0: compute [0,5) + derived idle [5,10); rank1: idle [0,2) +
    # queue [2,4) + idle [4,10).
    for pid in (0, 1):
        assert _timeline_sum(events, pid) == pytest.approx(10.0)
    derived = [e for e in events if e["name"] == "idle (derived)"]
    assert len(derived) == 3


def test_events_sorted_by_pid_tid_ts():
    doc = to_trace_events(_small_hub(), makespan=10.0)
    keys = [(e["pid"], e["tid"], e["ts"]) for e in doc["traceEvents"]]
    assert keys == sorted(keys)


# ------------------------------------------------------------- rejection
def test_validate_rejects_non_list():
    with pytest.raises(ValueError, match="must be a list"):
        validate_trace_events({"traceEvents": "nope"})


def test_validate_rejects_missing_key():
    with pytest.raises(ValueError, match="lacks 'dur'"):
        validate_trace_events(
            {"traceEvents": [{"pid": 0, "tid": 0, "ts": 0.0,
                              "cat": "compute", "name": "x", "ph": "X"}]}
        )


def test_validate_rejects_wrong_phase_and_negative_times():
    event = {"pid": 0, "tid": 0, "ts": 0.0, "dur": 1.0,
             "cat": "compute", "name": "x", "ph": "X"}
    with pytest.raises(ValueError, match="not a complete event"):
        validate_trace_events({"traceEvents": [dict(event, ph="B")]})
    with pytest.raises(ValueError, match="negative dur"):
        validate_trace_events({"traceEvents": [dict(event, dur=-1.0)]})
    with pytest.raises(ValueError, match="negative ts"):
        validate_trace_events({"traceEvents": [dict(event, ts=-0.5)]})


# ----------------------------------------------------------------- file
def test_write_trace_roundtrips(tmp_path):
    path = tmp_path / "trace.json"
    count = write_trace(_small_hub(), 10.0, str(path))
    doc = json.loads(path.read_text())
    assert validate_trace_events(doc) == count


# ----------------------------------------------- executor integration
def test_traced_run_export_tiles_makespan():
    executor, makespan, _ = traced_run(hops=12, n_gpus=4)
    doc = to_trace_events(executor.telemetry, makespan)
    validate_trace_events(doc)
    # Acceptance property: per-rank timeline category totals in the
    # exported JSON sum to that rank's makespan (±1 tick).
    for rank in range(4):
        assert _timeline_sum(doc["traceEvents"], rank) == pytest.approx(
            makespan, abs=1.0
        )
