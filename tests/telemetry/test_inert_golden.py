"""Inertness golden tests: telemetry never perturbs the simulation.

Two guarantees pinned here:

* disabled telemetry is the seed behavior — no hub is constructed, no
  counters appear (the pinned digests in tests/sim/test_golden_traces.py
  cover the pre-PR traces themselves);
* *enabled* telemetry is observation-only — the DES dispatches the
  exact same event trace, same makespan, same counters (modulo the
  ``telemetry_*`` bookkeeping keys).
"""

import hashlib

from repro.config import daisy
from repro.runtime import AtosConfig, AtosExecutor
from repro.telemetry import TELEMETRY_ENV
from tests.telemetry.helpers import RelayApp


class _Digest:
    """Folds every dispatched heap entry into one SHA-256."""

    def __init__(self):
        self._hash = hashlib.sha256()
        self.n_events = 0

    def __call__(self, entry):
        when, priority, seq, event = entry
        self.n_events += 1
        self._hash.update(
            f"{when!r}|{priority}|{seq}|{type(event).__name__}\n".encode()
        )

    def hexdigest(self):
        return self._hash.hexdigest()


def _digest_run(telemetry):
    executor = AtosExecutor(
        daisy(4), RelayApp(hops=12), AtosConfig(telemetry=telemetry)
    )
    digest = _Digest()
    executor.env.trace_hook = digest
    makespan, counters = executor.run()
    return digest.hexdigest(), makespan, dict(counters), executor


def _strip(counters):
    return {
        k: v for k, v in counters.items() if not k.startswith("telemetry_")
    }


def test_disabled_runs_are_deterministic():
    a = _digest_run(telemetry=False)
    b = _digest_run(telemetry=False)
    assert a[:3] == b[:3]
    assert a[3].telemetry is None


def test_enabled_telemetry_is_trace_identical():
    off_digest, off_makespan, off_counters, _ = _digest_run(telemetry=False)
    on_digest, on_makespan, on_counters, executor = _digest_run(
        telemetry=True
    )
    assert on_digest == off_digest
    assert on_makespan == off_makespan
    assert _strip(on_counters) == _strip(off_counters)
    # The bookkeeping keys are the only difference, and only when on.
    assert "telemetry_spans" not in off_counters
    assert on_counters["telemetry_spans"] == executor.telemetry.total_spans


def test_config_none_follows_environment(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    executor = AtosExecutor(daisy(2), RelayApp(hops=2), AtosConfig())
    assert executor.telemetry is None

    monkeypatch.setenv(TELEMETRY_ENV, "1")
    executor = AtosExecutor(daisy(2), RelayApp(hops=2), AtosConfig())
    assert executor.telemetry is not None


def test_explicit_config_overrides_environment(monkeypatch):
    monkeypatch.setenv(TELEMETRY_ENV, "1")
    executor = AtosExecutor(
        daisy(2), RelayApp(hops=2), AtosConfig(telemetry=False)
    )
    assert executor.telemetry is None
