"""Shared toy application for the telemetry test suite.

A token bounces between PEs; each hop sends a remote update to the
next rank.  That exercises every span source — compute/queue from the
GPU processes, comm from the fabric, agg_wait from the aggregator —
plus cross-rank dependency edges, without any graph machinery.
"""

import numpy as np

from repro.config import daisy
from repro.runtime import (
    AtosApplication,
    AtosConfig,
    AtosExecutor,
    RoundOutcome,
)


class RelayApp(AtosApplication):
    """Token relay: each processed task enqueues the next hop remotely."""

    name = "telemetry-relay"

    def __init__(self, hops: int):
        self.hops = hops
        self.n_pes = 0

    def setup(self, n_pes):
        self.n_pes = n_pes
        seeds = [(np.empty(0, dtype=np.int64), None) for _ in range(n_pes)]
        seeds[0] = (np.array([self.hops], dtype=np.int64), None)
        return seeds

    def process(self, pe, tasks):
        outcome = RoundOutcome(edges_processed=len(tasks))
        for remaining in tasks.tolist():
            if remaining <= 0:
                continue
            dst = (pe + 1) % max(self.n_pes, 1)
            if dst == pe:
                outcome.local_pushes = np.append(
                    outcome.local_pushes, remaining - 1
                ).astype(np.int64)
            else:
                payload = np.array([[remaining - 1]], dtype=np.int64)
                if dst in outcome.remote_updates:
                    payload = np.vstack(
                        [outcome.remote_updates[dst], payload]
                    )
                outcome.remote_updates[dst] = payload
        return outcome

    def handle_remote(self, pe, payload):
        return payload[:, 0], None


def traced_run(hops=12, n_gpus=4, **config_kwargs):
    """Run the relay with telemetry on.

    Returns ``(executor, makespan, counters)``; the executor's
    ``telemetry`` hub holds the recorded spans and edges.  The
    aggregator is forced on (daisy is intra-node, which would normally
    skip it) so every span source is exercised.
    """
    config_kwargs.setdefault("use_aggregator", True)
    config = AtosConfig(telemetry=True, **config_kwargs)
    executor = AtosExecutor(daisy(n_gpus), RelayApp(hops), config)
    makespan, counters = executor.run()
    return executor, makespan, dict(counters)
