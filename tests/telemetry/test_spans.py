"""Span primitives: recording, validation, bounded logs, env gating."""

import pickle

import pytest

from repro.telemetry import (
    CATEGORIES,
    OVERLAY_CATEGORIES,
    TELEMETRY_ENV,
    TIMELINE_CATEGORIES,
    Span,
    SpanLog,
    Telemetry,
    telemetry_enabled,
)
from tests.telemetry.helpers import traced_run


# ------------------------------------------------------------ env gating
def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    assert not telemetry_enabled()


@pytest.mark.parametrize("value", ["1", "true", "ON", " yes "])
def test_enabled_values(monkeypatch, value):
    monkeypatch.setenv(TELEMETRY_ENV, value)
    assert telemetry_enabled()


@pytest.mark.parametrize("value", ["0", "false", "off", "", "maybe"])
def test_disabled_values(monkeypatch, value):
    monkeypatch.setenv(TELEMETRY_ENV, value)
    assert not telemetry_enabled()


# ------------------------------------------------------------- categories
def test_category_groups_partition_the_categories():
    assert set(TIMELINE_CATEGORIES) | set(OVERLAY_CATEGORIES) == set(
        CATEGORIES
    )
    assert not set(TIMELINE_CATEGORIES) & set(OVERLAY_CATEGORIES)


# --------------------------------------------------------------- recording
def test_span_duration_and_payload():
    span = Span(0, "compute", 2.0, 5.5, "round", n_bytes=64, n_items=3)
    assert span.duration == pytest.approx(3.5)
    assert span.n_bytes == 64 and span.n_items == 3


def test_rejects_unknown_category():
    hub = Telemetry(1)
    with pytest.raises(ValueError, match="unknown span category"):
        hub.span(0, "sleeping", 0.0, 1.0)


def test_rejects_backwards_span():
    hub = Telemetry(1)
    with pytest.raises(ValueError, match="ends before it starts"):
        hub.span(0, "compute", 5.0, 1.0)


def test_zero_length_spans_dropped_silently():
    hub = Telemetry(1)
    hub.span(0, "compute", 3.0, 3.0)
    assert hub.total_spans == 0 and not list(hub.all_spans())


def test_rejects_bad_sizes():
    with pytest.raises(ValueError):
        Telemetry(0)
    with pytest.raises(ValueError):
        SpanLog(0, max_spans=0)


# -------------------------------------------------------- bounded storage
def test_ring_buffer_evicts_oldest_and_counts():
    hub = Telemetry(2, max_spans_per_rank=3)
    for i in range(5):
        hub.span(0, "compute", float(i), float(i) + 0.5, f"s{i}")
    assert hub.total_spans == 5
    assert len(hub.rank_spans(0)) == 3
    assert [s.name for s in hub.rank_spans(0)] == ["s2", "s3", "s4"]
    assert hub.evicted == 2
    assert hub.truncated


def test_unbounded_hub_never_truncates():
    hub = Telemetry(1, max_spans_per_rank=None)
    for i in range(100):
        hub.span(0, "queue", float(i), float(i) + 1.0)
    assert hub.total_spans == 100 and hub.evicted == 0
    assert not hub.truncated


def test_edge_eviction_counts_as_truncation():
    hub = Telemetry(1, max_spans_per_rank=2)
    for i in range(4):  # edges deque bounded at max * n_ranks = 2
        hub.edge(0, 0, float(i), float(i) + 1.0)
    assert hub.total_edges == 4 and len(hub.edges) == 2
    assert hub.evicted == 2 and hub.truncated


# ----------------------------------------------------------------- queries
def test_rank_spans_category_filter_and_totals():
    hub = Telemetry(1)
    hub.span(0, "compute", 0.0, 4.0)
    hub.span(0, "comm", 1.0, 2.0)
    hub.span(0, "compute", 4.0, 5.0)
    assert len(hub.rank_spans(0)) == 3
    assert len(hub.rank_spans(0, ("compute",))) == 2
    totals = hub.category_totals(0)
    assert totals["compute"] == pytest.approx(5.0)
    assert totals["comm"] == pytest.approx(1.0)


def test_hub_is_picklable():
    hub = Telemetry(2)
    hub.span(0, "compute", 0.0, 1.0, "round")
    hub.edge(0, 1, 0.5, 0.9)
    clone = pickle.loads(pickle.dumps(hub))
    assert clone.total_spans == 1 and clone.total_edges == 1


# ----------------------------------------------- executor integration
def test_executor_records_all_span_sources():
    executor, makespan, counters = traced_run(hops=12, n_gpus=4)
    hub = executor.telemetry
    assert hub is not None and makespan > 0
    seen = {span.category for span in hub.all_spans()}
    # GPU process, memory model, fabric, and aggregator all reported.
    assert {"compute", "queue", "comm", "agg_wait"} <= seen
    assert seen <= set(CATEGORIES)
    assert hub.total_edges > 0  # cross-rank hops produced dep edges
    assert counters["telemetry_spans"] == hub.total_spans
    assert counters["telemetry_edges"] == hub.total_edges
    assert counters["telemetry_spans_evicted"] == hub.evicted == 0


def test_spans_stay_within_makespan():
    executor, makespan, _ = traced_run(hops=10, n_gpus=3)
    for span in executor.telemetry.all_spans():
        assert span.start >= 0.0
        assert span.end <= makespan + 1e-6
