"""Evaluation-engine tests: seeds, dedup accounting, error isolation."""

import pytest

from repro.harness import clear_memory_cache
from repro.tune.evaluate import EvaluationEngine, derive_rep_seed
from repro.tune.objective import get_objective
from repro.tune.search import Trial
from repro.tune.space import CategoricalDim, Space


@pytest.fixture()
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_memory_cache()
    yield
    clear_memory_cache()


def small_space(datasets=("hollywood-2009",)):
    return Space(
        dims=(
            CategoricalDim("wait_time", choices=(1, 4), ordered=True),
            CategoricalDim("dataset", choices=datasets),
        ),
        base={"app": "bfs", "machine": "daisy", "n_gpus": 1},
    )


def test_rep_seed_zero_matches_default_and_is_stable():
    # Rep 0 must be seed 0 so single-rep studies share cache entries
    # with the main tables.
    assert derive_rep_seed(123, 0) == 0
    assert derive_rep_seed(123, 1) == derive_rep_seed(123, 1)
    seeds = {derive_rep_seed(9, rep) for rep in range(6)}
    assert len(seeds) == 6  # distinct per rep
    assert all(0 <= s < 2**31 for s in seeds)
    # Counter-based: independent of any other draws.
    assert derive_rep_seed(9, 3) != derive_rep_seed(10, 3)


def test_specs_for_orders_reps_and_varies_seed():
    engine = EvaluationEngine(
        small_space(), get_objective("makespan"), study_seed=5
    )
    trial = Trial(0, {"wait_time": 1, "dataset": "hollywood-2009"}, reps=3)
    specs = engine.specs_for(trial)
    assert len(specs) == 3
    assert specs[0].seed == 0
    assert len({s.seed for s in specs}) == 3
    without_seed = {
        (s.framework, s.app, s.dataset, s.machine, s.n_gpus) for s in specs
    }
    assert len(without_seed) == 1  # same cell, different seeds


def test_duplicate_points_become_repeat_hits(isolated_caches):
    engine = EvaluationEngine(
        small_space(), get_objective("makespan"), jobs=1
    )
    point = {"wait_time": 1, "dataset": "hollywood-2009"}
    first = engine.evaluate([Trial(0, point)])[0]
    assert first.ok and first.simulations == 1
    second = engine.evaluate([Trial(1, dict(point))])[0]
    assert second.ok
    assert second.objective == first.objective
    assert second.simulations == 0
    assert second.repeat_hits == 1
    assert engine.accounting()["repeat_hits"] == 1
    assert engine.accounting()["simulations"] == 1


def test_failing_point_is_isolated_not_fatal(isolated_caches):
    space = small_space(datasets=("hollywood-2009", "no-such-dataset"))
    engine = EvaluationEngine(space, get_objective("makespan"), jobs=1)
    good = Trial(0, {"wait_time": 1, "dataset": "hollywood-2009"})
    bad = Trial(1, {"wait_time": 1, "dataset": "no-such-dataset"})
    outcomes = engine.evaluate([good, bad])
    assert outcomes[0].ok
    assert not outcomes[1].ok
    assert outcomes[1].objective == float("inf")
    assert outcomes[1].error
    assert engine.accounting()["errors"] == 1


def test_objective_extraction_failure_is_an_error_outcome(isolated_caches):
    # critical_path needs a partitioned run; a plain run must fail
    # the trial, not the study.
    engine = EvaluationEngine(
        small_space(), get_objective("critical_path"), jobs=1
    )
    outcome = engine.evaluate(
        [Trial(0, {"wait_time": 1, "dataset": "hollywood-2009"})]
    )[0]
    assert not outcome.ok
    assert "critical_path" in outcome.error or "WindowStats" in outcome.error


def test_ok_outcome_carries_aux_metrics(isolated_caches):
    engine = EvaluationEngine(
        small_space(), get_objective("makespan"), jobs=1
    )
    outcome = engine.evaluate(
        [Trial(0, {"wait_time": 1, "dataset": "hollywood-2009"})]
    )[0]
    assert outcome.ok
    assert outcome.aux["time_ms"] == pytest.approx(outcome.objective)
    assert outcome.aux["fabric_messages"] >= 0
