"""Searcher invariants: one shared contract suite + per-searcher pins.

Every registered searcher must honour the ask/tell protocol, never
overspend its budget, and replay the identical trial sequence under a
fixed seed regardless of how evaluations were scheduled.  Successive
halving additionally pins budget conservation (promotions are only
charged their *new* repetitions) and strictly rank-monotone promotion.
"""

import pytest

from repro.errors import ConfigError
from repro.tune.search import (
    SEARCHERS,
    EvolutionarySearcher,
    SuccessiveHalvingSearcher,
    make_searcher,
)
from repro.tune.space import CategoricalDim, Space

BUDGET = 14


def small_space():
    return Space(
        dims=(
            CategoricalDim("batch_size", choices=(2, 4, 8, 16), ordered=True),
            CategoricalDim("wait_time", choices=(1, 4, 16), ordered=True),
        ),
        base={"app": "bfs", "dataset": "hollywood-2009"},
    )


def objective(point):
    """Deterministic synthetic objective with a unique optimum (8, 4)."""
    return abs(point["batch_size"] - 8) + abs(point["wait_time"] - 4)


def drive(searcher, record=None):
    """Drain/tell loop; returns number of trials told."""
    told = 0
    while True:
        batch = []
        while (trial := searcher.ask()) is not None:
            batch.append(trial)
        if not batch:
            break
        for trial in batch:
            if record is not None:
                record.append((trial.index, trial.key()))
            searcher.tell(trial, float(objective(trial.point)))
            told += 1
    return told


@pytest.mark.parametrize("name", sorted(SEARCHERS))
def test_contract_budget_and_termination(name):
    searcher = make_searcher(name, small_space(), BUDGET, seed=3)
    told = drive(searcher)
    assert told > 0
    assert searcher.spent <= BUDGET
    assert searcher.done
    assert searcher.ask() is None  # done stays done


@pytest.mark.parametrize("name", sorted(SEARCHERS))
def test_contract_deterministic_under_seed(name):
    first: list = []
    second: list = []
    drive(make_searcher(name, small_space(), BUDGET, seed=5), first)
    drive(make_searcher(name, small_space(), BUDGET, seed=5), second)
    assert first == second
    third: list = []
    drive(make_searcher(name, small_space(), BUDGET, seed=6), third)
    # A different seed must not be forced to replay the same points
    # (grid search legitimately ignores the seed).
    if name != "grid":
        assert [k for _, k in third] != [k for _, k in first]


@pytest.mark.parametrize("name", sorted(SEARCHERS))
def test_contract_ask_tell_round_trip(name):
    searcher = make_searcher(name, small_space(), BUDGET, seed=0)
    trial = searcher.ask()
    assert trial is not None
    searcher.tell(trial, 1.0)
    with pytest.raises(ConfigError):  # double-tell is an error
        searcher.tell(trial, 1.0)
    assert searcher.trials_told() == [(trial, 1.0)]
    assert searcher.best() == (trial, 1.0)


@pytest.mark.parametrize("name", sorted(SEARCHERS))
def test_contract_best_tracks_minimum(name):
    searcher = make_searcher(name, small_space(), BUDGET, seed=1)
    drive(searcher)
    told = searcher.trials_told()
    assert searcher.best()[1] == min(obj for _, obj in told)


def test_grid_covers_whole_grid_when_budget_allows():
    space = small_space()
    searcher = make_searcher("grid", space, budget=50, seed=0)
    seen: list = []
    drive(searcher, seen)
    assert len(seen) == len(space.grid())


def test_evolutionary_breeds_from_best_parents():
    space = small_space()
    searcher = EvolutionarySearcher(space, budget=30, seed=2, mu=2, lam=4)
    drive(searcher)
    # Generations happened and later trials cluster near the optimum:
    # the last generation's points are all mutations of top-2 parents.
    assert searcher._generation >= 1
    assert searcher.best()[1] <= 2


def test_sha_budget_conservation_and_monotone_promotion():
    space = small_space()
    searcher = SuccessiveHalvingSearcher(
        space, budget=20, seed=4, eta=2, n0=8
    )
    drive(searcher)
    promotions = searcher.promotions()
    assert promotions, "no promotion ever happened"
    for audit in promotions:
        assert audit["promoted"] == max(1, audit["evaluated"] // 2)
        ranked = sorted(audit["objectives"])
        # Monotone: the promotion cut is exactly the k-th best score.
        assert audit["cut"] == ranked[audit["promoted"] - 1]
    # Budget counts evaluation units: charged units never exceed it,
    # even though promoted trials re-run at doubled fidelity.
    assert searcher.spent <= 20
    # Fidelity actually escalated across rungs.
    max_reps = max(t.reps for t, _ in searcher.trials_told())
    assert max_reps >= 2
    # Promoted units were charged incrementally: total *nominal* reps
    # exceed charged spend because lower-rung reps are cache hits.
    nominal = sum(t.reps for t, _ in searcher.trials_told())
    assert nominal > searcher.spent


def test_sha_promotes_the_rung_winners():
    space = small_space()
    searcher = SuccessiveHalvingSearcher(
        space, budget=24, seed=7, eta=2, n0=8
    )
    rung0: list = []
    while (trial := searcher.ask()) is not None:
        rung0.append(trial)
    for trial in rung0:
        searcher.tell(trial, float(objective(trial.point)))
    rung1: list = []
    while (trial := searcher.ask()) is not None:
        rung1.append(trial)
    assert rung1, "second rung never opened"
    ranked = sorted(rung0, key=lambda t: (objective(t.point), t.index))
    expected = [t.point for t in ranked[: len(rung1)]]
    assert [t.point for t in rung1] == expected
    assert all(t.reps == 2 for t in rung1)


def test_make_searcher_rejects_unknown_name():
    with pytest.raises(ConfigError):
        make_searcher("annealing", small_space(), 4)


def test_budget_must_be_positive():
    with pytest.raises(ConfigError):
        make_searcher("random", small_space(), 0)
