"""Study-runner tests: journal resume, BENCH document schema."""

import json

import pytest

from repro.harness import clear_memory_cache
from repro.tune.search import Trial
from repro.tune.space import CategoricalDim, Space
from repro.tune.study import (
    SCHEMA,
    StudyJournal,
    render_tune_bench,
    run_study,
    trial_journal_key,
    validate_tune_bench,
)


@pytest.fixture()
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_memory_cache()
    yield
    clear_memory_cache()


def tiny_space():
    return Space(
        dims=(
            CategoricalDim("wait_time", choices=(1, 4, 16), ordered=True),
        ),
        base={
            "app": "bfs",
            "dataset": "hollywood-2009",
            "machine": "daisy",
            "n_gpus": 1,
        },
    )


class FakeOutcome:
    status = "ok"
    objective = 1.5
    per_rep = [1.5]
    wall_s = 0.01
    simulations = 1
    disk_hits = 0
    repeat_hits = 0
    aux = {"time_ms": 1.5}
    error = ""


def test_journal_replays_only_matching_identity(tmp_path):
    path = str(tmp_path / "j.ndjson")
    trial = Trial(0, {"wait_time": 1})
    journal = StudyJournal(path, {"seed": 1})
    journal.append("search", "k1", trial, FakeOutcome())
    journal.close()

    same = StudyJournal(path, {"seed": 1})
    assert same.lookup("k1") is not None
    assert same.lookup("k2") is None
    assert same.replays == 1
    same.close()

    # A different study seed (or code version) must not replay.
    different = StudyJournal(path, {"seed": 2})
    assert different.lookup("k1") is None
    different.close()


def test_journal_key_is_searcher_agnostic_but_app_scoped():
    space_a = tiny_space()
    space_b = Space(
        dims=space_a.dims, base={**space_a.base, "app": "pagerank"}
    )
    trial = Trial(0, {"wait_time": 1})
    key_a = trial_journal_key(space_a, "makespan", trial)
    # Same evaluation, different proposing trial index: same key.
    assert key_a == trial_journal_key(space_a, "makespan", Trial(7, {"wait_time": 1}))
    # Different app / objective / fidelity: different key.
    assert key_a != trial_journal_key(space_b, "makespan", trial)
    assert key_a != trial_journal_key(space_a, "composite", trial)
    assert key_a != trial_journal_key(
        space_a, "makespan", Trial(0, {"wait_time": 1}, reps=2)
    )


def test_journal_tolerates_truncated_tail(tmp_path):
    path = str(tmp_path / "j.ndjson")
    trial = Trial(0, {"wait_time": 1})
    journal = StudyJournal(path, {"seed": 1})
    journal.append("search", "k1", trial, FakeOutcome())
    journal.close()
    with open(path, "a") as fh:
        fh.write('{"phase": "search", "key": "half-writ')  # crash mid-line
    again = StudyJournal(path, {"seed": 1})
    assert again.lookup("k1") is not None
    again.close()


def test_run_study_emits_valid_doc_and_resumes_for_free(
    isolated_caches, tmp_path
):
    journal = str(tmp_path / "study.ndjson")
    doc = run_study(
        tiny_space(),
        searcher="grid",
        budget=3,
        objective="makespan",
        seed=2,
        jobs=1,
        journal_path=journal,
    )
    assert doc["schema"] == SCHEMA
    assert validate_tune_bench(doc) == 3
    assert doc["accounting"]["simulations"] == 3
    assert doc["accounting"]["journal_replays"] == 0
    assert doc["best"]["objective"] <= min(
        t["objective"] for t in doc["trials"]
    )
    rendered = render_tune_bench(doc)
    assert "evaluations saved" in rendered and "best:" in rendered

    # Second run: every trial replays from the journal — the
    # acceptance criterion's "zero re-evaluations".
    resumed = run_study(
        tiny_space(),
        searcher="grid",
        budget=3,
        objective="makespan",
        seed=2,
        jobs=1,
        journal_path=journal,
    )
    assert resumed["accounting"]["simulations"] == 0
    assert resumed["accounting"]["journal_replays"] == 3
    assert resumed["accounting"]["evaluations_saved"] >= 3
    assert resumed["best"] == doc["best"]
    # The journal file kept its single header + 3 trials (no rewrite).
    lines = open(journal).read().splitlines()
    assert len(lines) == 4


def test_partial_journal_resumes_midway(isolated_caches, tmp_path):
    journal = str(tmp_path / "study.ndjson")
    full = run_study(
        tiny_space(), searcher="grid", budget=3, objective="makespan",
        seed=2, jobs=1, journal_path=journal,
    )
    # Drop the last journaled trial: simulate a study killed midway.
    lines = open(journal).read().splitlines()
    with open(journal, "w") as fh:
        fh.write("\n".join(lines[:-1]) + "\n")
    clear_memory_cache()
    resumed = run_study(
        tiny_space(), searcher="grid", budget=3, objective="makespan",
        seed=2, jobs=1, journal_path=journal,
    )
    assert resumed["accounting"]["journal_replays"] == 2
    # The missing cell is recomputed (from the disk cache if anything,
    # but never replayed from the journal).
    assert (
        resumed["accounting"]["simulations"]
        + resumed["accounting"]["disk_cache_hits"]
    ) >= 1
    assert resumed["best"] == full["best"]


def test_cross_searcher_journal_sharing(isolated_caches, tmp_path):
    # The journal keys on evaluation identity, not the proposing
    # searcher: an evolutionary study over cells a grid study already
    # swept re-evaluates nothing.  (This is how the fig4 preset's
    # evolutionary phase rides the sweep's cache.)
    journal = str(tmp_path / "shared.ndjson")
    grid = run_study(
        tiny_space(), searcher="grid", budget=3, objective="makespan",
        seed=0, jobs=1, journal_path=journal,
    )
    assert grid["accounting"]["simulations"] == 3
    evo = run_study(
        tiny_space(), searcher="evolutionary", budget=3,
        objective="makespan", seed=0, jobs=1, journal_path=journal,
    )
    assert evo["accounting"]["simulations"] == 0
    assert evo["accounting"]["journal_replays"] == len(evo["trials"])
    assert evo["best"]["objective"] == grid["best"]["objective"]


def test_validate_rejects_malformed_docs(isolated_caches, tmp_path):
    doc = run_study(
        tiny_space(), searcher="grid", budget=3, objective="makespan",
        seed=0, jobs=1,
        journal_path=str(tmp_path / "j.ndjson"),
    )
    for mutate in (
        lambda d: d.update(schema="repro-tune/0"),
        lambda d: d.update(mode="mystery"),
        lambda d: d.pop("accounting"),
        lambda d: d.update(trials=[]),
        lambda d: d.update(best=None),
        lambda d: d["trials"][0].pop("point"),
    ):
        broken = json.loads(json.dumps(doc))
        mutate(broken)
        with pytest.raises(ValueError):
            validate_tune_bench(broken)
