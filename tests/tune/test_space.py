"""Parameter-space unit tests: dims, sampling, grids, compile."""

import pytest

from repro.config import ConfigOverlay
from repro.errors import ConfigError
from repro.harness.pool import RunSpec
from repro.tune.space import (
    CategoricalDim,
    ConditionalDim,
    FloatDim,
    IntDim,
    Space,
    canonical_point,
    hash_uniform,
)


def test_hash_uniform_is_pure_and_keyed():
    a = hash_uniform(7, 3, "wait_time")
    assert a == hash_uniform(7, 3, "wait_time")
    assert 0.0 <= a < 1.0
    assert a != hash_uniform(7, 3, "batch_size")
    assert a != hash_uniform(8, 3, "wait_time")


def test_canonical_point_is_order_insensitive():
    assert canonical_point({"b": 1, "a": 2}) == canonical_point(
        {"a": 2, "b": 1}
    )


def test_int_dim_sampling_and_grid():
    dim = IntDim("wait_time", low=1, high=64, log=True)
    values = {dim.sample(i / 99) for i in range(100)}
    assert all(1 <= v <= 64 for v in values)
    assert len(values) > 4  # log sweep actually spreads
    grid = dim.grid_values()
    assert grid[0] == 1 and grid[-1] == 64
    assert list(grid) == sorted(set(grid))


def test_int_dim_rejects_bad_bounds():
    with pytest.raises(ConfigError):
        IntDim("wait_time", low=5, high=1)
    with pytest.raises(ConfigError):
        IntDim("wait_time", low=0, high=8, log=True)
    with pytest.raises(ConfigError):
        IntDim("wait_time", low=1, high=8, grid=(9,))


def test_float_dim_mutation_stays_in_range():
    dim = FloatDim("wait_time", low=0.5, high=32.0, log=True)
    value = 1.0
    for i in range(50):
        value = dim.mutate(value, hash_uniform(0, i))
        assert 0.5 <= value <= 32.0


def test_ordered_categorical_mutates_to_neighbours():
    dim = CategoricalDim(
        "batch_size", choices=(1, 2, 4, 8, 16), ordered=True
    )
    for i in range(40):
        moved = dim.mutate(4, hash_uniform(1, i))
        assert moved in (1, 2, 8, 16) and moved != 4
    # Edges reflect instead of falling off.
    for i in range(40):
        assert dim.mutate(1, hash_uniform(2, i)) in (2, 4)


def test_unordered_categorical_mutates_to_any_other():
    dim = CategoricalDim("engine_queue", choices=("heap", "calendar"))
    assert dim.mutate("heap", 0.3) == "calendar"
    assert dim.mutate("calendar", 0.9) == "heap"


def _conditional_space():
    return Space(
        dims=(
            CategoricalDim("partitions", choices=(1, 2, 4), ordered=True),
            ConditionalDim(
                "pdes_driver",
                dim=CategoricalDim(
                    "pdes_driver", choices=("local", "pooled")
                ),
                when_param="partitions",
                when_in=(2, 4),
            ),
        ),
        base={"app": "bfs", "dataset": "hollywood-2009"},
    )


def test_conditional_dim_activation_in_sampling():
    space = _conditional_space()
    saw_active = saw_inactive = False
    for i in range(40):
        point = space.sample(5, i)
        if point["partitions"] == 1:
            assert "pdes_driver" not in point
            saw_inactive = True
        else:
            assert point["pdes_driver"] in ("local", "pooled")
            saw_active = True
        space.validate_point(point)
    assert saw_active and saw_inactive


def test_conditional_grid_honours_activation():
    grid = _conditional_space().grid()
    # partitions=1 contributes one point; 2 and 4 contribute two each.
    assert len(grid) == 1 + 2 * 2
    for point in grid:
        if point["partitions"] == 1:
            assert "pdes_driver" not in point


def test_conditional_must_reference_earlier_param():
    with pytest.raises(ConfigError):
        Space(
            dims=(
                ConditionalDim(
                    "pdes_driver",
                    dim=CategoricalDim("pdes_driver", choices=("local",)),
                    when_param="partitions",
                    when_in=(2,),
                ),
            ),
            base={"app": "bfs", "dataset": "hollywood-2009"},
        )


def test_validate_point_errors():
    space = _conditional_space()
    with pytest.raises(ConfigError):  # unknown key
        space.validate_point({"partitions": 2, "nope": 1, "pdes_driver": "local"})
    with pytest.raises(ConfigError):  # missing active dim
        space.validate_point({"partitions": 2})
    with pytest.raises(ConfigError):  # inactive conditional set
        space.validate_point({"partitions": 1, "pdes_driver": "local"})
    with pytest.raises(ConfigError):  # out of range
        space.validate_point({"partitions": 3})


def test_sample_is_pure_function_of_seed_and_index():
    space = _conditional_space()
    assert [space.sample(9, i) for i in range(10)] == [
        space.sample(9, i) for i in range(10)
    ]
    assert space.sample(9, 0) != space.sample(10, 0) or space.sample(
        9, 1
    ) != space.sample(10, 1)


def test_mutate_changes_at_least_one_dim_and_stays_valid():
    space = Space(
        dims=(
            CategoricalDim("batch_size", choices=(1, 2, 4), ordered=True),
            CategoricalDim("wait_time", choices=(1, 4, 16), ordered=True),
        ),
        base={"app": "bfs", "dataset": "hollywood-2009"},
    )
    parent = {"batch_size": 2, "wait_time": 4}
    for i in range(30):
        child = space.mutate(parent, 3, "gen", i)
        space.validate_point(child)
        assert child != parent


def test_json_round_trip():
    space = _conditional_space()
    again = Space.from_json(space.to_json())
    assert again.to_dict() == space.to_dict()
    assert [again.sample(4, i) for i in range(8)] == [
        space.sample(4, i) for i in range(8)
    ]


def test_from_json_rejects_garbage():
    with pytest.raises(ConfigError):
        Space.from_json("{not json")
    with pytest.raises(ConfigError):
        Space.from_dict({"dims": [{"kind": "mystery", "name": "x"}]})


def test_compile_builds_runspec_with_overlay():
    space = Space(
        dims=(
            CategoricalDim("wait_time", choices=(1, 4), ordered=True),
        ),
        base={
            "app": "bfs",
            "dataset": "hollywood-2009",
            "machine": "daisy",
            "n_gpus": 2,
        },
    )
    spec = space.compile({"wait_time": 4})
    assert isinstance(spec, RunSpec)
    assert spec.app == "bfs" and spec.machine == "daisy"
    assert isinstance(spec.overlay, ConfigOverlay)
    assert spec.overlay.wait_time == 4
    # Hashable: usable as a cache/dedup key.
    assert hash(spec) == hash(space.compile({"wait_time": 4}))


def test_compile_without_overlay_dims_has_no_overlay():
    space = Space(
        dims=(CategoricalDim("n_gpus", choices=(1, 2), ordered=True),),
        base={"app": "bfs", "dataset": "hollywood-2009"},
    )
    assert space.compile({"n_gpus": 2}).overlay is None


def test_compile_requires_app_and_dataset():
    space = Space(
        dims=(CategoricalDim("wait_time", choices=(1,), ordered=True),),
        base={"dataset": "hollywood-2009"},
    )
    with pytest.raises(ConfigError):
        space.compile({"wait_time": 1})


def test_space_rejects_unknown_names():
    with pytest.raises(ConfigError):
        Space(dims=(CategoricalDim("warp_width", choices=(32,)),))
    with pytest.raises(ConfigError):
        Space(base={"app": "bfs", "dataset": "x", "warp_width": 32})
