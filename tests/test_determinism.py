"""End-to-end determinism: identical inputs give identical simulations.

The harness's claim that tables are reproducible bit-for-bit rests on
(a) seeded generators/partitioners and (b) a deterministic event loop.
These tests run whole stacks twice and require exact equality.
"""

import numpy as np

from repro.config import daisy, summit_ib
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    bfs_grow_partition,
    geometric_weights,
    grid_mesh,
    largest_component_vertex,
    rmat,
)
from repro.apps import AtosBFS, AtosPageRank, AtosSSSP
from repro.runtime import AtosConfig, AtosExecutor


def _bfs_run(machine, config):
    g = rmat(scale=9, edge_factor=6, seed=31)
    part = bfs_grow_partition(g, machine.n_gpus, seed=0)
    app = AtosBFS(g, part, largest_component_vertex(g))
    makespan, counters = AtosExecutor(machine, app, config).run()
    return makespan, dict(counters), app.result()


def test_bfs_deterministic_nvlink():
    a = _bfs_run(daisy(4), AtosConfig(fetch_size=1))
    b = _bfs_run(daisy(4), AtosConfig(fetch_size=1))
    assert a[0] == b[0]
    assert a[1] == b[1]
    assert np.array_equal(a[2], b[2])


def test_bfs_deterministic_ib_with_aggregator():
    config = AtosConfig(fetch_size=1, wait_time=4)
    a = _bfs_run(summit_ib(4), config)
    b = _bfs_run(summit_ib(4), config)
    assert a[0] == b[0] and a[1] == b[1]


def test_priority_discrete_deterministic():
    config = AtosConfig(
        kernel=KernelStrategy.DISCRETE, priority=True, fetch_size=1
    )
    a = _bfs_run(daisy(3), config)
    b = _bfs_run(daisy(3), config)
    assert a[0] == b[0] and a[1] == b[1]


def test_pagerank_deterministic():
    def once():
        g = rmat(scale=8, edge_factor=6, seed=7)
        part = bfs_grow_partition(g, 3, seed=0)
        app = AtosPageRank(g, part, epsilon=1e-4)
        makespan, counters = AtosExecutor(daisy(3), app).run()
        return makespan, dict(counters), app.result()

    a, b = once(), once()
    assert a[0] == b[0]
    assert a[1] == b[1]
    assert np.array_equal(a[2], b[2])


def test_sssp_deterministic():
    def once():
        g = grid_mesh(18, 18, seed=4)
        w = geometric_weights(g, width=18, seed=4)
        part = bfs_grow_partition(g, 3, seed=0)
        app = AtosSSSP(w, part, 0)
        makespan, _ = AtosExecutor(
            daisy(3), app, AtosConfig(fetch_size=1)
        ).run()
        return makespan, app.result()

    a, b = once(), once()
    assert a[0] == b[0]
    assert np.array_equal(a[1], b[1])


def test_generators_and_partitions_deterministic():
    assert rmat(scale=8, edge_factor=4, seed=5) == rmat(
        scale=8, edge_factor=4, seed=5
    )
    g = grid_mesh(15, 15, seed=9)
    p1 = bfs_grow_partition(g, 4, seed=2)
    p2 = bfs_grow_partition(g, 4, seed=2)
    assert np.array_equal(p1.owner, p2.owner)
    w1 = geometric_weights(g, width=15, seed=3)
    w2 = geometric_weights(g, width=15, seed=3)
    assert np.array_equal(w1.weights, w2.weights)
