"""Unit + property tests for CSR graph storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph


def small_graph() -> CSRGraph:
    #   0 -> 1, 2
    #   1 -> 2
    #   2 -> (none)
    #   3 -> 0
    return CSRGraph.from_edges([0, 0, 1, 3], [1, 2, 2, 0], 4)


def test_basic_counts():
    g = small_graph()
    assert g.n_vertices == 4
    assert g.n_edges == 4
    assert g.n_global == 4


def test_out_degrees():
    g = small_graph()
    assert list(g.out_degree()) == [2, 1, 0, 1]
    assert g.out_degree(0) == 2
    assert list(g.out_degree(np.array([2, 3]))) == [0, 1]


def test_neighbors_view():
    g = small_graph()
    assert list(g.neighbors(0)) == [1, 2]
    assert list(g.neighbors(2)) == []
    # It must be a view into indices, not a copy.
    assert g.neighbors(0).base is g.indices


def test_expand_batch_simple():
    g = small_graph()
    targets, origin = g.expand_batch(np.array([0, 3]))
    assert list(targets) == [1, 2, 0]
    assert list(origin) == [0, 0, 1]


def test_expand_batch_with_empty_rows():
    g = small_graph()
    targets, origin = g.expand_batch(np.array([2, 0, 2, 1]))
    assert list(targets) == [1, 2, 2]
    assert list(origin) == [1, 1, 3]


def test_expand_batch_empty_input():
    g = small_graph()
    targets, origin = g.expand_batch(np.array([], dtype=np.int64))
    assert len(targets) == 0 and len(origin) == 0


def test_expand_batch_repeated_vertices():
    g = small_graph()
    targets, origin = g.expand_batch(np.array([0, 0]))
    assert list(targets) == [1, 2, 1, 2]
    assert list(origin) == [0, 0, 1, 1]


def test_from_edges_dedup_and_self_loops():
    g = CSRGraph.from_edges([0, 0, 0, 1], [1, 1, 0, 1], 2)
    # (0,1) duplicated -> one edge; (0,0) and (1,1) self loops dropped.
    assert g.n_edges == 1
    assert list(g.neighbors(0)) == [1]


def test_from_edges_keep_duplicates_when_asked():
    g = CSRGraph.from_edges([0, 0], [1, 1], 2, dedup=False)
    assert g.n_edges == 2


def test_from_edges_out_of_range_rejected():
    with pytest.raises(ValueError):
        CSRGraph.from_edges([0], [5], 2)
    with pytest.raises(ValueError):
        CSRGraph.from_edges([-1], [0], 2)


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.int32))
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 2, 1]), np.array([0], dtype=np.int32))
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 1]), np.array([], dtype=np.int32))


def test_to_edges_round_trip():
    g = small_graph()
    src, dst = g.to_edges()
    g2 = CSRGraph.from_edges(src, dst, 4)
    assert g == g2


def test_reverse():
    g = small_graph()
    r = g.reverse()
    assert list(r.neighbors(2)) == [0, 1]
    assert list(r.neighbors(0)) == [3]
    assert r.n_edges == g.n_edges


def test_reverse_twice_is_identity():
    g = small_graph()
    assert g.reverse().reverse() == g


def test_symmetrized():
    g = CSRGraph.from_edges([0], [1], 3)
    s = g.symmetrized()
    assert list(s.neighbors(0)) == [1]
    assert list(s.neighbors(1)) == [0]
    assert s.n_edges == 2


def test_row_subgraph_keeps_global_columns():
    g = small_graph()
    sub = g.row_subgraph(np.array([0, 3]))
    assert sub.n_vertices == 2
    assert sub.n_global == 4
    assert list(sub.neighbors(0)) == [1, 2]  # row 0 = global vertex 0
    assert list(sub.neighbors(1)) == [0]  # row 1 = global vertex 3


def test_equality_and_hash():
    a = small_graph()
    b = small_graph()
    assert a == b
    assert hash(a) == hash(b)
    c = CSRGraph.from_edges([0], [1], 4)
    assert a != c


# ------------------------------------------------------------ properties
edge_lists = st.integers(2, 30).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=120,
        ),
    )
)


@given(edge_lists)
@settings(max_examples=60)
def test_property_expand_batch_matches_neighbor_loop(data):
    n, edges = data
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    g = CSRGraph.from_edges(src, dst, n)
    batch = np.arange(g.n_vertices)
    targets, origin = g.expand_batch(batch)
    # Reference: python loop over rows.
    expected_targets: list[int] = []
    expected_origin: list[int] = []
    for i, v in enumerate(batch):
        for u in g.neighbors(int(v)):
            expected_targets.append(int(u))
            expected_origin.append(i)
    assert list(targets) == expected_targets
    assert list(origin) == expected_origin


@given(edge_lists)
@settings(max_examples=60)
def test_property_degree_sum_equals_edge_count(data):
    n, edges = data
    g = CSRGraph.from_edges(
        [e[0] for e in edges], [e[1] for e in edges], n
    )
    assert int(np.sum(g.out_degree())) == g.n_edges


@given(edge_lists)
@settings(max_examples=40)
def test_property_symmetrized_is_symmetric(data):
    n, edges = data
    g = CSRGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n)
    s = g.symmetrized()
    src, dst = s.to_edges()
    forward = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in forward for a, b in forward)


@given(edge_lists)
@settings(max_examples=40)
def test_property_reverse_preserves_edge_multiset(data):
    n, edges = data
    g = CSRGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], n)
    src, dst = g.to_edges()
    rsrc, rdst = g.reverse().to_edges()
    assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
        zip(rdst.tolist(), rsrc.tolist())
    )
