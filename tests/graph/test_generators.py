"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    bfs_levels,
    complete_graph,
    estimate_diameter,
    grid_mesh,
    path_graph,
    rmat,
    star_graph,
)
from repro.graph.stats import UNREACHED


# ---------------------------------------------------------------- RMAT
def test_rmat_size():
    g = rmat(scale=8, edge_factor=8, seed=1, symmetrize=False)
    assert g.n_vertices == 256
    # Duplicates removed, so realized edges <= requested.
    assert 0 < g.n_edges <= 8 * 256


def test_rmat_deterministic():
    a = rmat(scale=8, edge_factor=4, seed=7)
    b = rmat(scale=8, edge_factor=4, seed=7)
    assert a == b


def test_rmat_seed_changes_graph():
    a = rmat(scale=8, edge_factor=4, seed=7)
    b = rmat(scale=8, edge_factor=4, seed=8)
    assert a != b


def test_rmat_is_skewed():
    g = rmat(scale=10, edge_factor=8, seed=3)
    deg = np.asarray(g.out_degree())
    # Scale-free signature: max degree far above average.
    assert deg.max() > 8 * deg.mean()


def test_rmat_skewing_a_concentrates_edges_on_hubs():
    base = rmat(scale=10, edge_factor=8, seed=3)
    skewed = rmat(scale=10, edge_factor=8, a=0.7, b=0.12, c=0.12, seed=3)

    def hub_share(g):
        # Fraction of all edges held by the top 1% highest-degree rows.
        deg = np.sort(np.asarray(g.out_degree()))[::-1]
        top = max(1, len(deg) // 100)
        return deg[:top].sum() / g.n_edges

    assert hub_share(skewed) > hub_share(base)


def test_rmat_small_diameter():
    g = rmat(scale=10, edge_factor=16, seed=3)
    assert estimate_diameter(g) <= 8


def test_rmat_symmetrize_flag():
    g = rmat(scale=6, edge_factor=4, seed=1, symmetrize=True)
    src, dst = g.to_edges()
    forward = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in forward for a, b in forward)


def test_rmat_invalid_probabilities():
    with pytest.raises(ValueError):
        rmat(scale=4, edge_factor=2, a=0.5, b=0.3, c=0.3)
    with pytest.raises(ValueError):
        rmat(scale=4, edge_factor=2, a=0.0)


# ---------------------------------------------------------------- grid
def test_grid_mesh_size():
    g = grid_mesh(10, 10, drop_fraction=0.0, shortcut_fraction=0.0, seed=0)
    assert g.n_vertices == 100
    # Full 10x10 lattice: 2*10*9 undirected edges = 360 directed.
    assert g.n_edges == 360


def test_grid_mesh_degree_is_small():
    g = grid_mesh(30, 30, seed=2)
    assert float(np.mean(g.out_degree())) < 5.0


def test_grid_mesh_high_diameter():
    g = grid_mesh(40, 40, seed=2)
    assert estimate_diameter(g) >= 40  # Θ(width + height)


def test_grid_mesh_mostly_connected():
    g = grid_mesh(30, 30, drop_fraction=0.05, seed=2)
    depth = bfs_levels(g, 0)
    reached = int((depth != UNREACHED).sum())
    assert reached > 0.9 * g.n_vertices


def test_grid_mesh_deterministic():
    assert grid_mesh(12, 9, seed=5) == grid_mesh(12, 9, seed=5)


def test_grid_mesh_validation():
    with pytest.raises(ValueError):
        grid_mesh(1, 10)
    with pytest.raises(ValueError):
        grid_mesh(10, 10, drop_fraction=1.5)


# ------------------------------------------------------------- toy graphs
def test_path_graph():
    g = path_graph(5)
    assert g.n_vertices == 5
    assert estimate_diameter(g) == 4
    assert list(g.neighbors(2)) == [1, 3]


def test_star_graph():
    g = star_graph(6)
    assert g.out_degree(0) == 5
    assert all(g.out_degree(v) == 1 for v in range(1, 6))


def test_complete_graph():
    g = complete_graph(4)
    assert g.n_edges == 12
    assert estimate_diameter(g) == 1


def test_toy_graph_validation():
    with pytest.raises(ValueError):
        path_graph(0)
    with pytest.raises(ValueError):
        star_graph(1)
    with pytest.raises(ValueError):
        complete_graph(0)
