"""Tests for graph partitioners and the Partition bundle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph import (
    bfs_grow_partition,
    block_partition,
    edge_cut,
    grid_mesh,
    make_partition,
    random_partition,
    rmat,
)
from repro.graph.csr import CSRGraph


def toy():
    return rmat(scale=8, edge_factor=6, seed=11)


def _check_partition_invariants(graph, part):
    # Every vertex owned exactly once; parts cover the graph.
    assert len(part.owner) == graph.n_vertices
    assert sum(len(p) for p in part.part_vertices) == graph.n_vertices
    for pe in range(part.n_parts):
        mine = part.part_vertices[pe]
        assert np.all(part.owner[mine] == pe)
        # local_index round-trips.
        assert np.array_equal(mine[part.local_index[mine]], mine)
        # Row subgraph rows correspond 1:1 to owned vertices.
        assert part.subgraphs[pe].n_vertices == len(mine)
        assert part.subgraphs[pe].n_global == graph.n_vertices
    # Edges preserved across subgraphs.
    assert sum(sg.n_edges for sg in part.subgraphs) == graph.n_edges


@pytest.mark.parametrize("n_parts", [1, 2, 3, 4, 8])
def test_random_partition_invariants(n_parts):
    g = toy()
    part = random_partition(g, n_parts, seed=0)
    _check_partition_invariants(g, part)


@pytest.mark.parametrize("n_parts", [1, 2, 4])
def test_block_partition_invariants(n_parts):
    g = toy()
    part = block_partition(g, n_parts)
    _check_partition_invariants(g, part)
    # Blocks are contiguous.
    assert np.all(np.diff(part.owner) >= 0)


@pytest.mark.parametrize("n_parts", [1, 2, 4, 6])
def test_bfs_grow_partition_invariants(n_parts):
    g = grid_mesh(24, 24, seed=3)
    part = bfs_grow_partition(g, n_parts, seed=0)
    _check_partition_invariants(g, part)


def test_bfs_grow_is_balanced_on_mesh():
    g = grid_mesh(32, 32, seed=3)
    part = bfs_grow_partition(g, 4, seed=0)
    assert part.balance() < 1.35


def test_bfs_grow_beats_random_cut_on_mesh():
    g = grid_mesh(32, 32, seed=3)
    grown = bfs_grow_partition(g, 4, seed=0)
    rand = random_partition(g, 4, seed=0)
    assert edge_cut(g, grown) < 0.5 * edge_cut(g, rand)


def test_edge_cut_zero_for_single_part():
    g = toy()
    assert edge_cut(g, random_partition(g, 1)) == 0


def test_random_partition_no_empty_parts():
    g = rmat(scale=5, edge_factor=4, seed=1)
    part = random_partition(g, 8, seed=0)
    assert all(len(p) > 0 for p in part.part_vertices)


def test_partition_handles_disconnected_graph():
    # Two disjoint cliques.
    src = [0, 1, 2, 3, 4, 5]
    dst = [1, 2, 0, 4, 5, 3]
    g = CSRGraph.from_edges(src, dst, 6).symmetrized()
    part = bfs_grow_partition(g, 2, seed=0)
    _check_partition_invariants(g, part)


def test_make_partition_validation():
    g = toy()
    with pytest.raises(PartitionError):
        make_partition(g, np.zeros(3, dtype=np.int32), 2)  # wrong length
    with pytest.raises(PartitionError):
        make_partition(g, np.full(g.n_vertices, 5, dtype=np.int32), 2)
    with pytest.raises(PartitionError):
        make_partition(g, np.zeros(g.n_vertices, dtype=np.int32), 0)


def test_block_partition_too_many_parts():
    g = rmat(scale=3, edge_factor=2, seed=1)
    with pytest.raises(PartitionError):
        block_partition(g, g.n_vertices + 1)


def test_partition_determinism():
    g = toy()
    a = bfs_grow_partition(g, 4, seed=9)
    b = bfs_grow_partition(g, 4, seed=9)
    assert np.array_equal(a.owner, b.owner)


@given(
    st.integers(2, 5).flatmap(
        lambda s: st.tuples(st.just(s), st.integers(1, 6), st.integers(0, 3))
    )
)
@settings(max_examples=25, deadline=None)
def test_property_partitions_cover_and_disjoint(params):
    scale, n_parts, seed = params
    g = rmat(scale=scale, edge_factor=3, seed=seed)
    n_parts = min(n_parts, g.n_vertices)
    for strategy in (random_partition, bfs_grow_partition):
        part = strategy(g, n_parts, seed=seed)
        seen = np.zeros(g.n_vertices, dtype=int)
        for pe in range(n_parts):
            seen[part.part_vertices[pe]] += 1
        assert np.all(seen == 1)


# ---------------------------------------------------------- re-homing
def test_rehome_moves_only_orphans():
    from repro.graph import rehome_partition

    graph = toy()
    part = bfs_grow_partition(graph, 4, seed=0)
    rehomed = rehome_partition(graph, part, {1}, seed=0)
    _check_partition_invariants(graph, rehomed)
    assert rehomed.n_parts == 4  # dead rank keeps its (empty) slot
    assert rehomed.part_size(1) == 0
    moved = part.owner != rehomed.owner
    # Exactly the dead rank's vertices moved, all onto survivors.
    assert set(np.flatnonzero(moved)) == set(np.flatnonzero(part.owner == 1))
    assert set(np.unique(rehomed.owner[moved])) <= {0, 2, 3}


def test_rehome_is_deterministic_and_seed_sensitive():
    from repro.graph import rehome_partition

    graph = toy()
    part = bfs_grow_partition(graph, 4, seed=0)
    a = rehome_partition(graph, part, {2}, seed=5)
    b = rehome_partition(graph, part, {2}, seed=5)
    np.testing.assert_array_equal(a.owner, b.owner)
    c = rehome_partition(graph, part, {2}, seed=6)
    assert not np.array_equal(a.owner, c.owner)


def test_rehome_spreads_orphans_and_is_incremental():
    from repro.graph import rehome_partition

    graph = toy()
    part = bfs_grow_partition(graph, 4, seed=0)
    one = rehome_partition(graph, part, {1}, seed=0)
    # Rendezvous hashing: survivors each get a nontrivial share.
    orphans = np.flatnonzero(part.owner == 1)
    gains = {
        pe: int(np.sum(one.owner[orphans] == pe)) for pe in (0, 2, 3)
    }
    assert all(gain > 0 for gain in gains.values())
    # A second failure only moves the newly dead rank's vertices
    # (minimal disruption): vertices already re-homed do not move again
    # unless their new owner is the one that died.
    two = rehome_partition(graph, one, {1, 3}, seed=0)
    _check_partition_invariants(graph, two)
    moved_again = np.flatnonzero(one.owner != two.owner)
    assert set(moved_again) == set(np.flatnonzero(one.owner == 3))


def test_rehome_edge_cases():
    from repro.graph import rehome_partition

    graph = toy()
    part = bfs_grow_partition(graph, 4, seed=0)
    assert rehome_partition(graph, part, set(), seed=0) is part
    with pytest.raises(PartitionError, match="no surviving"):
        rehome_partition(graph, part, {0, 1, 2, 3}, seed=0)
