"""Tests for graph file I/O (edge lists and Matrix Market)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, WeightedGraph, rmat, uniform_weights
from repro.graph.io import (
    GraphIOError,
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


@pytest.fixture
def graph():
    return rmat(scale=6, edge_factor=4, seed=3, symmetrize=False)


# ------------------------------------------------------------ edge list
def test_edge_list_round_trip(graph, tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    loaded = read_edge_list(path, n_vertices=graph.n_vertices)
    assert loaded == graph


def test_edge_list_weighted_round_trip(graph, tmp_path):
    weighted = uniform_weights(graph, seed=1)
    path = tmp_path / "g.wel"
    write_edge_list(weighted, path)
    loaded = read_edge_list(path, n_vertices=graph.n_vertices,
                            weighted=True)
    assert isinstance(loaded, WeightedGraph)
    assert loaded.graph == graph
    assert np.allclose(loaded.weights, weighted.weights)


def test_edge_list_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# comment\n\n0 1\n% other comment\n1 2\n")
    g = read_edge_list(path)
    assert g.n_vertices == 3 and g.n_edges == 2


def test_edge_list_infers_vertex_count(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 9\n")
    assert read_edge_list(path).n_vertices == 10


def test_edge_list_errors(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("justone\n")
    with pytest.raises(GraphIOError):
        read_edge_list(path)
    path.write_text("a b\n")
    with pytest.raises(GraphIOError):
        read_edge_list(path)
    path.write_text("# only comments\n")
    with pytest.raises(GraphIOError):
        read_edge_list(path)
    path.write_text("-1 2\n")
    with pytest.raises(GraphIOError):
        read_edge_list(path)


# -------------------------------------------------------- matrix market
def test_mm_round_trip_pattern(graph, tmp_path):
    path = tmp_path / "g.mtx"
    write_matrix_market(graph, path)
    loaded = read_matrix_market(path)
    assert loaded == graph


def test_mm_round_trip_weighted(graph, tmp_path):
    weighted = uniform_weights(graph, seed=2)
    path = tmp_path / "g.mtx"
    write_matrix_market(weighted, path)
    loaded = read_matrix_market(path)
    assert isinstance(loaded, WeightedGraph)
    assert loaded.graph == graph
    assert np.allclose(loaded.weights, weighted.weights)


def test_mm_symmetric_expansion(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 2\n"
    )
    g = read_matrix_market(path)
    assert g.n_edges == 4  # both directions materialized
    assert list(g.neighbors(0)) == [1]
    assert list(g.neighbors(1)) == [0, 2]


def test_mm_header_errors(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("not a header\n1 1 0\n")
    with pytest.raises(GraphIOError):
        read_matrix_market(path)
    path.write_text("%%MatrixMarket matrix array real general\n")
    with pytest.raises(GraphIOError):
        read_matrix_market(path)
    path.write_text(
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
    )
    with pytest.raises(GraphIOError):
        read_matrix_market(path)


def test_mm_loaded_graph_is_runnable(tmp_path):
    # End-to-end: write, read, run BFS on the loaded graph.
    from repro.config import daisy
    from repro.graph import largest_component_vertex, random_partition
    from repro.apps import AtosBFS, reference_bfs
    from repro.runtime import AtosExecutor

    graph = rmat(scale=7, edge_factor=4, seed=9)
    path = tmp_path / "g.mtx"
    write_matrix_market(graph, path)
    loaded = read_matrix_market(path)
    src = largest_component_vertex(loaded)
    app = AtosBFS(loaded, random_partition(loaded, 2, seed=0), src)
    AtosExecutor(daisy(2), app).run()
    assert np.array_equal(app.result(), reference_bfs(loaded, src))
