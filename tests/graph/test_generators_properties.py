"""Property-based tests for the graph generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import grid_mesh, rmat
from repro.graph.stats import bfs_levels, UNREACHED


@given(st.integers(3, 9), st.integers(1, 8), st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_rmat_well_formed(scale, edge_factor, seed):
    g = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    n = 1 << scale
    assert g.n_vertices == n
    # Symmetrized + deduped: bounded by 2x requested and by n^2.
    assert g.n_edges <= min(2 * edge_factor * n, n * (n - 1))
    # No self loops.
    src, dst = g.to_edges()
    assert not np.any(src == dst)
    # Symmetric.
    fwd = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in fwd for a, b in fwd)


@given(st.integers(2, 12), st.integers(2, 12), st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_grid_mesh_degree_bound(width, height, seed):
    g = grid_mesh(width, height, drop_fraction=0.0,
                  shortcut_fraction=0.0, seed=seed)
    deg = np.asarray(g.out_degree())
    # Pure lattice: degree between 2 (corner) and 4.
    assert deg.min() >= 2 and deg.max() <= 4
    # Fully connected lattice.
    assert np.all(bfs_levels(g, 0) != UNREACHED)


@given(
    st.integers(3, 10),
    st.integers(3, 10),
    st.floats(0.0, 0.3),
    st.integers(0, 4),
)
@settings(max_examples=30, deadline=None)
def test_property_grid_mesh_edge_budget(width, height, drop, seed):
    g = grid_mesh(width, height, drop_fraction=drop,
                  shortcut_fraction=0.02, seed=seed)
    n = width * height
    assert g.n_vertices == n
    lattice_directed = 2 * (width * (height - 1) + height * (width - 1))
    # Shortcuts add at most 2 * 0.02n directed edges post-symmetrize.
    assert g.n_edges <= lattice_directed + 2 * max(1, int(0.02 * n)) + 2


@given(st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_seeds_partition_rmat_space(seed):
    a = rmat(scale=6, edge_factor=4, seed=seed)
    b = rmat(scale=6, edge_factor=4, seed=seed)
    c = rmat(scale=6, edge_factor=4, seed=seed + 1)
    assert a == b
    assert a != c  # adjacent seeds give different graphs
