"""Tests for graph statistics and the dataset registry (Table I inputs)."""

import numpy as np
import pytest

import networkx as nx

from repro.errors import ConfigurationError
from repro.graph import (
    DATASETS,
    MESH_LIKE,
    SCALE_FREE,
    UNREACHED,
    bfs_levels,
    bfs_source,
    dataset_stats,
    estimate_diameter,
    graph_stats,
    grid_mesh,
    load,
    path_graph,
    rmat,
    star_graph,
)
from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_component_sizes, largest_component_vertex


# ------------------------------------------------------------- bfs_levels
def test_bfs_levels_path():
    g = path_graph(5)
    depth = bfs_levels(g, 0)
    assert list(depth) == [0, 1, 2, 3, 4]


def test_bfs_levels_star():
    g = star_graph(5)
    assert list(bfs_levels(g, 0)) == [0, 1, 1, 1, 1]
    assert list(bfs_levels(g, 1)) == [1, 0, 2, 2, 2]


def test_bfs_levels_unreachable():
    g = CSRGraph.from_edges([0], [1], 3).symmetrized()
    depth = bfs_levels(g, 0)
    assert depth[2] == UNREACHED


def test_bfs_levels_matches_networkx():
    g = rmat(scale=7, edge_factor=4, seed=5)
    src, dst = g.to_edges()
    nxg = nx.DiGraph(zip(src.tolist(), dst.tolist()))
    ours = bfs_levels(g, 0)
    theirs = nx.single_source_shortest_path_length(nxg, 0)
    for v in range(g.n_vertices):
        if v in theirs:
            assert ours[v] == theirs[v]
        else:
            assert ours[v] == UNREACHED


# --------------------------------------------------------------- diameter
def test_diameter_path():
    assert estimate_diameter(path_graph(10)) == 9


def test_diameter_star():
    assert estimate_diameter(star_graph(10)) == 2


def test_diameter_isolated_source():
    g = CSRGraph.from_edges([1], [2], 3)
    assert estimate_diameter(g, source=0) == 0


# ------------------------------------------------------------- components
def test_component_sizes():
    # 3-clique + 2-path + isolated vertex.
    g = CSRGraph.from_edges([0, 1, 2, 3], [1, 2, 0, 4], 6)
    assert connected_component_sizes(g) == [3, 2, 1]


def test_largest_component_vertex_reaches_most():
    g = grid_mesh(20, 20, seed=1)
    v = largest_component_vertex(g)
    reach = (bfs_levels(g, v) != UNREACHED).sum()
    assert reach > 0.9 * g.n_vertices


# ------------------------------------------------------------ graph_stats
def test_graph_stats_fields():
    g = path_graph(6)
    s = graph_stats("p6", g, "mesh-like")
    assert s.n_vertices == 6
    assert s.n_edges == 10
    assert s.diameter == 5
    assert s.max_out_degree == 2
    assert s.max_in_degree == 2
    assert s.avg_degree == pytest.approx(10 / 6)
    assert s.graph_type == "mesh-like"


# ---------------------------------------------------------------- datasets
def test_registry_has_six_paper_datasets():
    assert len(DATASETS) == 6
    assert set(SCALE_FREE + MESH_LIKE) == set(DATASETS)


def test_load_unknown_dataset():
    with pytest.raises(ConfigurationError):
        load("no-such-graph")


def test_load_is_cached():
    assert load("road-usa") is load("road-usa")


@pytest.mark.parametrize("name", SCALE_FREE)
def test_scale_free_datasets_have_skewed_degrees(name):
    g = load(name)
    deg = np.asarray(g.out_degree())
    assert deg.max() > 5 * deg.mean()


@pytest.mark.parametrize("name", MESH_LIKE)
def test_mesh_datasets_have_flat_degrees_high_diameter(name):
    stats = dataset_stats(name)
    assert stats.avg_degree < 5
    assert stats.diameter > 50


def test_mesh_diameter_exceeds_scale_free():
    mesh_d = min(dataset_stats(n).diameter for n in MESH_LIKE)
    sf_d = max(dataset_stats(n).diameter for n in SCALE_FREE)
    assert mesh_d > 5 * sf_d


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_bfs_source_reaches_most_of_graph(name):
    g = load(name)
    depth = bfs_levels(g, bfs_source(name))
    assert (depth != UNREACHED).sum() > 0.6 * g.n_vertices


def test_dataset_relative_sizes_match_paper_ordering():
    # twitter50 is the biggest by edges; hollywood is the densest.
    edges = {n: load(n).n_edges for n in DATASETS}
    assert edges["twitter50"] == max(edges.values())
    density = {
        n: load(n).n_edges / load(n).n_vertices for n in DATASETS
    }
    assert density["hollywood-2009"] == max(density.values())
