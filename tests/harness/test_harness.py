"""Harness tests: runner caching/validation and experiment plumbing.

Full-scale grids live in benchmarks/; these tests exercise the same
code paths on the smallest datasets and GPU counts.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    FRAMEWORKS,
    GridResult,
    get_driver,
    get_machine,
    get_partition,
    run,
    runtime_grid,
    table1_datasets,
)
from repro.metrics.tables import (
    format_generic_table,
    format_runtime_table,
    format_scaling_series,
)


def test_registry_has_all_evaluated_frameworks():
    assert {
        "gunrock",
        "groute",
        "galois",
        "atos-standard-persistent",
        "atos-priority-discrete",
        "atos-standard-discrete",
    } <= set(FRAMEWORKS)


def test_get_driver_unknown():
    with pytest.raises(ConfigurationError):
        get_driver("lux")  # the paper couldn't build Lux either


def test_get_machine():
    assert get_machine("daisy", 2).n_gpus == 2
    assert get_machine("summit-ib", 8).inter_node
    with pytest.raises(ConfigurationError):
        get_machine("frontier", 2)


def test_partition_policy():
    # twitter50 is random (Metis could not run it in the paper either);
    # everything else is metis-like.
    part = get_partition("hollywood-2009", 2)
    assert part.n_parts == 2
    tw = get_partition("twitter50", 2)
    assert tw.n_parts == 2


def test_run_is_cached():
    a = run("gunrock", "bfs", "hollywood-2009", "daisy", 1)
    b = run("gunrock", "bfs", "hollywood-2009", "daisy", 1)
    assert a is b


def test_run_validates_and_returns_result():
    result = run("atos-standard-persistent", "bfs", "hollywood-2009",
                 "daisy", 2)
    assert result.time_ms > 0
    assert result.app == "bfs"
    assert result.dataset == "hollywood-2009"


def test_run_unknown_app():
    with pytest.raises(ConfigurationError):
        run("gunrock", "sssp", "hollywood-2009", "daisy", 1)


def test_runtime_grid_structure():
    grid = runtime_grid(
        "bfs",
        ["gunrock", "atos-standard-persistent"],
        ["hollywood-2009"],
        "daisy",
        (1, 2),
    )
    assert isinstance(grid, GridResult)
    assert set(grid.times) == {"gunrock", "atos-standard-persistent"}
    assert len(grid.series("gunrock", "hollywood-2009")) == 2
    text = grid.render(baseline="gunrock")
    assert "hollywood-2009" in text
    assert "(x" in text  # speedups rendered for non-baseline


def test_runtime_grid_skip():
    grid = runtime_grid(
        "bfs",
        ["gunrock"],
        ["hollywood-2009"],
        "daisy",
        (1,),
        skip={("gunrock", "hollywood-2009")},
    )
    assert grid.times["gunrock"] == {}


def test_table1_renders_all_datasets():
    text = table1_datasets()
    for name in ("soc-livejournal1", "twitter50", "osm-eur"):
        assert name in text
    assert "scale-free" in text and "mesh-like" in text


# --------------------------------------------------------- formatting
def test_format_runtime_table_speedups():
    text = format_runtime_table(
        "t",
        ["1 GPU"],
        {"d": [2.0]},
        baselines={"d": [6.0]},
    )
    assert "(x3.00)" in text


def test_format_scaling_series_self_relative():
    text = format_scaling_series(
        "t", [1, 2], {"fw": [10.0, 5.0]}
    )
    assert "2.00" in text  # 10/5


def test_format_generic_table():
    text = format_generic_table("t", ["a", "b"], [[1, 2], [3, 4]])
    assert "a" in text and "4" in text
