"""Graceful shutdown of the experiment pool.

A SIGTERM (or Ctrl-C) during a grid run must not orphan workers: the
supervisor stops launching, drains in-flight cells within a grace
window (keeping their results), reaps everything, and raises
:class:`GridInterrupted` carrying the salvage.  The regression these
tests pin: before this, an interrupt left worker processes running
with no parent reading their pipes.
"""

import os
import signal
import threading
import time

import pytest

from repro.harness.pool import GridInterrupted, RunSpec, run_grid

SPECS = [
    RunSpec("fake", "bfs", f"d{i}", "daisy", 1, seed=i) for i in range(4)
]

#: Where slow cells record their worker pid (set per-test via env so
#: forked workers inherit it).
_PID_DIR_ENV = "REPRO_TEST_PID_DIR"


def _slow_cell(spec: RunSpec) -> str:
    pid_dir = os.environ.get(_PID_DIR_ENV)
    if pid_dir:
        with open(os.path.join(pid_dir, f"{spec.dataset}.pid"), "w") as fh:
            fh.write(str(os.getpid()))
    time.sleep(0.8)
    return f"ok:{spec.dataset}"


def _sigterm_soon(pid_dir, n_started=2, timeout_s=10.0):
    """Fire SIGTERM at ourselves once ``n_started`` workers are live."""

    def waiter():
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if len(os.listdir(pid_dir)) >= n_started:
                os.kill(os.getpid(), signal.SIGTERM)
                return
            time.sleep(0.02)

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    return thread


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused
        return True
    return True


def test_sigterm_drains_in_flight_and_reaps_workers(tmp_path, monkeypatch):
    monkeypatch.setenv(_PID_DIR_ENV, str(tmp_path))
    _sigterm_soon(str(tmp_path))

    with pytest.raises(GridInterrupted) as excinfo:
        run_grid(SPECS, jobs=2, run_fn=_slow_cell, drain_grace_s=10.0)

    interrupt = excinfo.value
    # The two in-flight cells finished inside the grace window and
    # were salvaged; the two never-launched specs are reported.
    assert len(interrupt.cells) == 2
    assert all(cell.ok for cell in interrupt.cells)
    assert {cell.result for cell in interrupt.cells} == {"ok:d0", "ok:d1"}
    assert [spec.dataset for spec in interrupt.unstarted] == ["d2", "d3"]
    assert "2 cell(s) salvaged" in str(interrupt)

    # No orphans: every worker that started is gone.
    time.sleep(0.1)
    for pid_file in os.listdir(tmp_path):
        pid = int((tmp_path / pid_file).read_text())
        assert not _alive(pid), f"worker {pid} ({pid_file}) was orphaned"


def test_expired_grace_kills_survivors_without_orphans(
    tmp_path, monkeypatch
):
    # A grace window shorter than the cells: the drain gives up,
    # kills the in-flight workers, and reports them as unstarted.
    monkeypatch.setenv(_PID_DIR_ENV, str(tmp_path))
    _sigterm_soon(str(tmp_path))

    with pytest.raises(GridInterrupted) as excinfo:
        run_grid(SPECS, jobs=2, run_fn=_slow_cell, drain_grace_s=0.05)

    interrupt = excinfo.value
    assert len(interrupt.cells) + len(interrupt.unstarted) == 4
    assert len(interrupt.unstarted) >= 2  # the killed pair at minimum

    time.sleep(0.1)
    for pid_file in os.listdir(tmp_path):
        pid = int((tmp_path / pid_file).read_text())
        assert not _alive(pid), f"worker {pid} ({pid_file}) survived"


def test_sigterm_handler_is_restored():
    previous = signal.getsignal(signal.SIGTERM)
    cells = run_grid(SPECS[:2], jobs=2, run_fn=lambda s: s.dataset)
    assert len(cells) == 2
    assert signal.getsignal(signal.SIGTERM) is previous


def test_uninterrupted_grid_unchanged(tmp_path, monkeypatch):
    # No signal: same results, same order, no exception.
    monkeypatch.setenv(_PID_DIR_ENV, str(tmp_path))
    cells = run_grid(SPECS, jobs=2, run_fn=_slow_cell, drain_grace_s=5.0)
    assert [cell.spec for cell in cells] == SPECS
    assert all(cell.ok for cell in cells)
