"""The profile workflow: traced cells, knobs, exports, and guardrails."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.harness import run_profile
from repro.harness.runner import clear_memory_cache
from repro.telemetry import TELEMETRY_ENV, validate_trace_events


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    # Profiled runs must not be served from (or leak into) caches, and
    # the ambient environment must not pre-enable telemetry.
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    clear_memory_cache()
    yield
    clear_memory_cache()


def _profile(**kwargs):
    return run_profile(
        "atos-standard-persistent", "bfs", "hollywood-2009",
        "summit-ib", 4, **kwargs
    )


def test_profile_builds_report_and_path():
    profile = _profile()
    assert profile.result.telemetry is not None
    assert profile.makespan_us > 0
    assert not profile.report.truncated
    assert profile.path.segments
    assert profile.path.path_time_us <= profile.makespan_us + 1e-6
    # The knobs come from the one config source of truth.
    assert profile.report.knobs["wait_time"] == 4.0
    text = profile.render(top_k=3)
    assert "load imbalance" in text and "critical path" in text


def test_profile_export_writes_valid_trace(tmp_path):
    path = tmp_path / "trace.json"
    profile = _profile(export=str(path))
    assert profile.trace_path == str(path)
    doc = json.loads(path.read_text())
    assert validate_trace_events(doc) == profile.trace_events > 0


def test_profile_restores_telemetry_env():
    assert TELEMETRY_ENV not in os.environ
    _profile()
    assert TELEMETRY_ENV not in os.environ


def test_profile_rejects_untraceable_framework():
    with pytest.raises(ConfigurationError, match="does not support"):
        run_profile("gunrock", "bfs", "hollywood-2009", "summit-ib", 4)
