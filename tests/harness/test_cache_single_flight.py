"""Single-flight hardening of the run cache.

The serving layer coalesces identical concurrent requests onto one
execution; the property that makes that safe lives here: two
simultaneous writers of the same key must produce exactly one cache
entry, and ``single_flight`` must compute at most once per key no
matter how many threads ask at the same time.
"""

import threading

from repro.harness.cache import RunCache


def _barrier_run(n_threads, target):
    """Run ``target(i)`` on n threads released as simultaneously as
    possible (a barrier right before the call)."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(i):
        barrier.wait()
        try:
            target(i)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_simultaneous_writers_one_entry(tmp_path):
    cache = RunCache(tmp_path)
    key = RunCache.key({"cell": "shared"})

    _barrier_run(8, lambda i: cache.store(key, {"writer": i}))

    assert len(cache.entries()) == 1
    assert not list(tmp_path.glob(".tmp-*"))  # no stray temp files
    loaded = cache.load(key)
    assert isinstance(loaded, dict) and "writer" in loaded


def test_single_flight_computes_once(tmp_path):
    cache = RunCache(tmp_path)
    key = RunCache.key({"cell": "dedup"})
    computed = []
    compute_lock = threading.Lock()
    results = {}

    def compute():
        with compute_lock:
            computed.append(1)
        return {"value": 42}

    def flight(i):
        results[i] = cache.single_flight(key, compute)

    _barrier_run(8, flight)

    assert len(computed) == 1  # one execution for eight askers
    assert all(value == {"value": 42} for value in results.values())
    assert len(cache.entries()) == 1
    # Followers were served from the entry the winner stored.
    assert cache.hits >= 7


def test_single_flight_serves_existing_entry(tmp_path):
    cache = RunCache(tmp_path)
    key = RunCache.key({"cell": "warm"})
    cache.store(key, "already-here")
    assert cache.single_flight(key, lambda: "recomputed") == "already-here"


def test_single_flight_distinct_keys_compute_independently(tmp_path):
    cache = RunCache(tmp_path)
    seen = []

    def make(i):
        def compute():
            seen.append(i)
            return i

        return compute

    for i in range(4):
        assert cache.single_flight(
            RunCache.key({"cell": i}), make(i)
        ) == i
    assert sorted(seen) == [0, 1, 2, 3]
    assert len(cache.entries()) == 4


def test_single_flight_propagates_compute_errors(tmp_path):
    cache = RunCache(tmp_path)
    key = RunCache.key({"cell": "boom"})

    def compute():
        raise RuntimeError("boom")

    try:
        cache.single_flight(key, compute)
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("error not propagated")
    # A failed compute stores nothing; the next caller retries.
    assert cache.load(key) is None
    assert cache.single_flight(key, lambda: "second-try") == "second-try"
