"""Property-based tests for the persistent run cache.

Three properties carry the cache's correctness burden:

* **round-trip** — store(key, v); load(key) == v, for arbitrary
  picklable payloads including numpy-bearing RunResults;
* **key sensitivity** — changing *any* spec field (or any nested
  machine-config constant) changes the key;
* **corruption safety** — an entry truncated or garbled at any byte is
  treated as a miss and deleted, never raised or trusted.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, daisy
from repro.harness.cache import (
    RunCache,
    canonical_fingerprint,
    machine_fingerprint,
)
from repro.metrics.counters import Counters, RunResult

SETTINGS = settings(max_examples=25, deadline=None)

scalars = st.one_of(
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
payloads = st.one_of(
    scalars,
    st.dictionaries(st.text(max_size=10), scalars, max_size=5),
    st.lists(scalars, max_size=8),
)

SPEC_FIELDS = ["framework", "app", "dataset", "machine", "n_gpus",
               "validate", "machine_config", "code_version"]


def base_spec() -> dict:
    return {
        "framework": "gunrock",
        "app": "bfs",
        "dataset": "hollywood-2009",
        "machine": "daisy",
        "n_gpus": 2,
        "validate": True,
        "machine_config": "abc123",
        "code_version": "1.0.0+deadbeef",
    }


# ------------------------------------------------------------- round trip
@SETTINGS
@given(value=payloads, key_seed=st.integers(0, 2**32))
def test_store_load_round_trip(tmp_path_factory, value, key_seed):
    cache = RunCache(tmp_path_factory.mktemp("rt"))
    key = canonical_fingerprint({"seed": key_seed})
    cache.store(key, value)
    assert cache.load(key) == value


def test_round_trip_preserves_run_result(tmp_path):
    cache = RunCache(tmp_path)
    result = RunResult(
        framework="gunrock",
        app="bfs",
        dataset="hollywood-2009",
        n_gpus=2,
        time_ms=3.25,
        counters=Counters({"edges_processed": 100.0, "rounds": 7.0}),
        output=np.arange(32, dtype=np.int32),
        wall_clock_s=0.5,
    )
    cache.store("k", result)
    loaded = cache.load("k")
    assert loaded is not result
    assert loaded.digest() == result.digest()
    assert np.array_equal(loaded.output, result.output)
    assert dict(loaded.counters) == dict(result.counters)


def test_missing_key_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    assert cache.load("nope") is None
    assert cache.misses == 1 and cache.hits == 0


# --------------------------------------------------------- key sensitivity
@SETTINGS
@given(
    field=st.sampled_from(SPEC_FIELDS),
    mutation=st.one_of(st.integers(0, 2**31), st.text(max_size=12)),
)
def test_any_spec_field_change_changes_key(field, mutation):
    spec = base_spec()
    mutated = dict(spec)
    if mutated[field] == mutation:
        mutation = f"{mutation}x"
    mutated[field] = mutation
    assert RunCache.key(spec) != RunCache.key(mutated)


def test_key_is_order_insensitive_and_deterministic():
    spec = base_spec()
    shuffled = dict(reversed(list(spec.items())))
    assert RunCache.key(spec) == RunCache.key(shuffled)


def test_machine_fingerprint_sees_nested_cost_constants():
    machine = daisy(2)
    mutated = dataclasses.replace(
        machine,
        cost=dataclasses.replace(
            CostModel(), kernel_launch_overhead=600.0
        ),
    )
    assert machine_fingerprint(machine) != machine_fingerprint(mutated)
    # ...and an identically-rebuilt machine fingerprints identically.
    assert machine_fingerprint(machine) == machine_fingerprint(daisy(2))


# ------------------------------------------------------------- corruption
@SETTINGS
@given(cut=st.floats(0.0, 1.0, exclude_max=True))
def test_truncated_entry_is_discarded_not_raised(tmp_path_factory, cut):
    cache = RunCache(tmp_path_factory.mktemp("trunc"))
    path = cache.store("k", {"payload": list(range(64))})
    blob = path.read_bytes()
    path.write_bytes(blob[: min(int(len(blob) * cut), len(blob) - 1)])
    assert cache.load("k") is None
    assert not path.exists()  # bad entry dropped so it can be rewritten


@SETTINGS
@given(garbage=st.binary(max_size=200))
def test_garbage_entry_is_discarded_not_raised(tmp_path_factory, garbage):
    cache = RunCache(tmp_path_factory.mktemp("garbage"))
    path = cache.store("k", "value")
    path.write_bytes(garbage)
    assert cache.load("k") is None
    assert not path.exists()


def test_flipped_payload_byte_fails_checksum(tmp_path):
    cache = RunCache(tmp_path)
    path = cache.store("k", {"a": 1})
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert cache.load("k") is None


def test_corrupt_entry_is_recomputed_via_store(tmp_path):
    cache = RunCache(tmp_path)
    path = cache.store("k", "good")
    path.write_bytes(b"not an entry")
    assert cache.load("k") is None
    cache.store("k", "recomputed")
    assert cache.load("k") == "recomputed"


def test_verify_drops_only_bad_entries(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("good1", 1)
    cache.store("good2", 2)
    bad = cache.store("bad", 3)
    bad.write_bytes(b"\x00\x01\x02")
    ok, removed = cache.verify()
    assert (ok, removed) == (2, 1)
    assert cache.load("good1") == 1 and cache.load("bad") is None


def test_clear_empties_the_cache(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("a", 1)
    cache.store("b", 2)
    assert cache.clear() == 2
    assert cache.entries() == []
    assert cache.stats()["entries"] == 0


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("a", list(range(100)))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0
    assert stats["stores"] == 1
