"""Failure injection for the experiment pool.

Extends the ``Bomb`` pattern of ``tests/runtime/test_failure_injection``
to the process level: a cell whose driver raises, a cell that exceeds
its deadline, and a worker killed outright mid-run must each mark only
their own cell failed — the rest of the grid completes, and results
stay in deterministic spec order.
"""

import os
import signal
import time

import pytest

from repro.harness import GridFailure, RunSpec, run_cells, run_grid

#: The grid under test: the "bomb" dataset is the injected-failure cell.
SPECS = [
    RunSpec("fake", "bfs", dataset, "daisy", 1)
    for dataset in ("d0", "d1", "bomb", "d3")
]


def _ok(spec: RunSpec) -> str:
    return f"ok:{spec.dataset}"


def _bomb_raises(spec: RunSpec) -> str:
    if spec.dataset == "bomb":
        raise RuntimeError("boom")
    return _ok(spec)


def _bomb_hangs(spec: RunSpec) -> str:
    if spec.dataset == "bomb":
        time.sleep(120.0)
    return _ok(spec)


def _bomb_dies(spec: RunSpec) -> str:
    if spec.dataset == "bomb":
        # Simulate a segfault/OOM-kill: no exception, no cleanup.
        os.kill(os.getpid(), signal.SIGKILL)
    return _ok(spec)


def _assert_only_bomb_failed(cells, expected_status):
    assert [cell.spec for cell in cells] == SPECS  # deterministic order
    by_dataset = {cell.spec.dataset: cell for cell in cells}
    assert by_dataset["bomb"].status == expected_status
    assert by_dataset["bomb"].result is None
    for dataset in ("d0", "d1", "d3"):
        cell = by_dataset[dataset]
        assert cell.status == "ok"
        assert cell.result == f"ok:{dataset}"


def test_raising_cell_is_isolated():
    cells = run_grid(SPECS, jobs=2, run_fn=_bomb_raises)
    _assert_only_bomb_failed(cells, "error")
    assert "boom" in {c.spec.dataset: c for c in cells}["bomb"].error


def test_timeout_cell_is_killed_and_isolated():
    cells = run_grid(SPECS, jobs=4, timeout_s=3.0, run_fn=_bomb_hangs)
    _assert_only_bomb_failed(cells, "timeout")
    assert "deadline" in {c.spec.dataset: c for c in cells}["bomb"].error


def test_killed_worker_is_detected_and_isolated():
    cells = run_grid(SPECS, jobs=2, run_fn=_bomb_dies)
    _assert_only_bomb_failed(cells, "crashed")


def test_serial_mode_isolates_exceptions_too():
    cells = run_grid(SPECS, jobs=1, run_fn=_bomb_raises)
    _assert_only_bomb_failed(cells, "error")


def test_all_ok_grid_and_wall_clocks():
    cells = run_grid(SPECS, jobs=2, run_fn=_ok)
    assert all(cell.ok for cell in cells)
    assert all(cell.wall_clock_s >= 0.0 for cell in cells)


def test_run_cells_raises_grid_failure_naming_the_cell():
    with pytest.raises(GridFailure) as exc:
        run_cells(SPECS, jobs=2)  # real driver: unknown framework "fake"
    failed = {cell.spec.dataset for cell in exc.value.failures}
    assert failed == {"d0", "d1", "bomb", "d3"}
    assert "fake" in str(exc.value)


def test_more_specs_than_workers_all_complete():
    many = [
        RunSpec("fake", "bfs", f"d{i}", "daisy", 1) for i in range(12)
    ]
    cells = run_grid(many, jobs=3, run_fn=_ok)
    assert [cell.spec for cell in cells] == many
    assert all(cell.ok for cell in cells)
