"""Regression: the run cache must key on config *contents*, not names.

The old ``lru_cache``-based ``run()`` keyed only on its call arguments
(framework, app, dataset, machine *name*, #GPUs), so anything that
changed what a machine name resolves to — a tuning sweep mutating cost
constants, as in ``examples/aggregator_tuning.py`` — would be served a
stale result recorded under the old constants.  ``run()`` now threads a
fingerprint of the materialized :class:`MachineConfig` (and the package
source) through both cache levels; these tests pin that.
"""

import dataclasses

import pytest

from repro.config import daisy
from repro.harness import clear_memory_cache, run, run_key
from repro.harness import runner as runner_module


@pytest.fixture()
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_memory_cache()
    yield monkeypatch
    clear_memory_cache()


def _slow_launch_daisy(n_gpus: int):
    """Daisy with a 100x kernel-launch overhead (a mutated cost model)."""
    machine = daisy(n_gpus)
    return dataclasses.replace(
        machine,
        cost=dataclasses.replace(
            machine.cost, kernel_launch_overhead=600.0
        ),
    )


CELL = ("atos-standard-persistent", "bfs", "hollywood-2009", "daisy", 1)


def test_mutated_machine_config_is_not_served_stale(isolated_caches):
    baseline = run(*CELL)

    # Re-point the machine *name* at a mutated config, exactly the
    # aliasing the lru_cache-era key could not see.
    isolated_caches.setitem(
        runner_module.MACHINES, "daisy", _slow_launch_daisy
    )
    mutated = run(*CELL)

    assert mutated is not baseline
    assert mutated.time_ms > baseline.time_ms  # the 100x launches show up
    assert mutated.digest() != baseline.digest()

    # And flipping the config back serves the original result again.
    isolated_caches.setitem(runner_module.MACHINES, "daisy", daisy)
    assert run(*CELL) is baseline


def test_run_key_tracks_machine_config(isolated_caches):
    before = run_key(*CELL)
    assert before == run_key(*CELL)  # deterministic
    isolated_caches.setitem(
        runner_module.MACHINES, "daisy", _slow_launch_daisy
    )
    assert run_key(*CELL) != before


def test_run_key_distinguishes_every_argument(isolated_caches):
    keys = {
        run_key(*CELL),
        run_key("gunrock", "bfs", "hollywood-2009", "daisy", 1),
        run_key("atos-standard-persistent", "pagerank", "hollywood-2009",
                "daisy", 1),
        run_key("atos-standard-persistent", "bfs", "road-usa", "daisy", 1),
        run_key("atos-standard-persistent", "bfs", "hollywood-2009",
                "daisy", 2),
        run_key("atos-standard-persistent", "bfs", "hollywood-2009",
                "daisy", 1, validate=False),
    }
    assert len(keys) == 6


def test_persistent_layer_also_keys_on_config(isolated_caches):
    """Even across a memo wipe (fresh process), a mutated config must
    miss the disk cache rather than load the baseline entry."""
    baseline = run(*CELL)
    clear_memory_cache()
    isolated_caches.setitem(
        runner_module.MACHINES, "daisy", _slow_launch_daisy
    )
    mutated = run(*CELL)
    assert mutated.cache_hits == 0  # computed, not replayed from disk
    assert mutated.time_ms > baseline.time_ms
