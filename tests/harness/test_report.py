"""Unit tests for the paper-vs-measured shape comparison."""

import pytest

from repro.harness import GridResult, ShapeReport, compare_grid


def _grid(times, gpu_counts=(1, 2)):
    grid = GridResult(app="bfs", machine="daisy", gpu_counts=gpu_counts)
    grid.times = times
    return grid


PAPER = {
    "fast": {"ds": (10.0, 5.0)},
    "slow": {"ds": (20.0, 30.0)},
}


def test_perfect_agreement():
    grid = _grid({"fast": {"ds": [1.0, 0.5]}, "slow": {"ds": [2.0, 3.0]}})
    report = compare_grid("t", grid, PAPER, (1, 2))
    assert report.cells == 2
    assert report.winner_agreement == 1.0
    assert report.direction_agreement == 1.0
    # Measured factors exactly match paper factors -> zero log error.
    assert report.median_log10_factor_error == pytest.approx(0.0)


def test_flipped_winner_detected():
    grid = _grid({"fast": {"ds": [9.0, 9.0]}, "slow": {"ds": [1.0, 1.0]}})
    report = compare_grid("t", grid, PAPER, (1, 2))
    assert report.winner_agreement == 0.0
    assert report.direction_agreement == 0.0


def test_factor_error_measured():
    # Paper factor: slow/fast = 2 at 1 GPU; measured factor = 20.
    grid = _grid(
        {"fast": {"ds": [1.0]}, "slow": {"ds": [20.0]}},
        gpu_counts=(1,),
    )
    report = compare_grid("t", grid, PAPER, (1, 2))
    assert report.median_log10_factor_error == pytest.approx(1.0)
    assert report.direction_agreement == 1.0  # direction still right


def test_missing_paper_cells_skipped():
    paper = {"fast": {"ds": (10.0, 5.0)}, "slow": {"ds": None}}
    grid = _grid({"fast": {"ds": [1.0, 1.0]}, "slow": {"ds": [2.0, 2.0]}})
    report = compare_grid("t", grid, paper, (1, 2))
    assert report.cells == 0  # only one framework comparable per cell


def test_gpu_count_alignment():
    # Grid measured at (1, 4); paper has (1, 2, 3, 4): align on 1 and 4.
    paper = {
        "fast": {"ds": (10.0, 8.0, 6.0, 5.0)},
        "slow": {"ds": (20.0, 22.0, 26.0, 30.0)},
    }
    grid = _grid(
        {"fast": {"ds": [1.0, 0.5]}, "slow": {"ds": [2.0, 3.0]}},
        gpu_counts=(1, 4),
    )
    report = compare_grid("t", grid, paper, (1, 2, 3, 4))
    assert report.cells == 2
    assert report.winner_agreement == 1.0


def test_framework_map():
    grid = _grid({"atos-best": {"ds": [1.0, 0.5]},
                  "slow": {"ds": [2.0, 3.0]}})
    report = compare_grid(
        "t", grid, PAPER, (1, 2), framework_map={"atos-best": "fast"}
    )
    assert report.cells == 2


def test_render_contains_metrics():
    report = ShapeReport(title="demo")
    report.cells = 2
    report.winner_matches = 1
    report.direction_pairs = 4
    report.direction_matches = 3
    report.notes.append("scale artifact")
    text = report.render()
    assert "demo" in text
    assert "50%" in text and "75%" in text
    assert "scale artifact" in text


def test_empty_report_defaults():
    report = ShapeReport(title="empty")
    assert report.winner_agreement == 1.0
    assert report.direction_agreement == 1.0
    assert report.median_log10_factor_error == 0.0
