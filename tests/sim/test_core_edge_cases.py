"""Additional DES core coverage: failure paths and composite events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_event_ok_and_processed_lifecycle():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(5)
    assert ev.triggered and ev.ok and not ev.processed
    env.run()
    assert ev.processed and ev.value == 5


def test_timeout_carries_value():
    env = Environment()
    results = []

    def proc(env):
        value = yield env.timeout(1.0, value="ding")
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["ding"]


def test_all_of_failure_propagates_first_error():
    env = Environment()

    def good(env):
        yield env.timeout(5.0)
        return "late"

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("early failure")

    def waiter(env):
        children = [env.process(good(env)), env.process(bad(env))]
        with pytest.raises(ValueError, match="early failure"):
            yield AllOf(env, children)
        return env.now

    p = env.process(waiter(env))
    env.run()
    assert p.value == 1.0  # failed as soon as the bad child died


def test_any_of_failure_if_first_event_fails():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("first to finish")

    def slow(env):
        yield env.timeout(10.0)

    def waiter(env):
        with pytest.raises(RuntimeError):
            yield AnyOf(env, [env.process(bad(env)),
                              env.process(slow(env))])
        return "handled"

    p = env.process(waiter(env))
    env.run()
    assert p.value == "handled"


def test_env_factories():
    env = Environment()

    def waiter(env):
        value = yield env.all_of([env.timeout(1.0, "a"),
                                  env.timeout(2.0, "b")])
        first = yield env.any_of([env.timeout(1.0, "x"),
                                  env.timeout(9.0, "y")])
        return value, first

    p = env.process(waiter(env))
    env.run()
    assert p.value == (["a", "b"], "x")


def test_composite_across_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env2.timeout(1.0)])


def test_all_of_with_already_triggered_members():
    env = Environment()
    done = env.event()
    done.succeed("pre")
    env.run()  # process `done`

    def waiter(env):
        values = yield AllOf(env, [done, env.timeout(1.0, "post")])
        return values

    p = env.process(waiter(env))
    env.run()
    assert p.value == ["pre", "post"]


def test_step_empty_heap_raises():
    from repro.errors import DeadlockError

    with pytest.raises(DeadlockError):
        Environment().step()


def test_succeed_with_delay():
    env = Environment()
    gate = env.event()
    gate.succeed("later", delay=7.0)
    hits = []

    def waiter(env):
        value = yield gate
        hits.append((env.now, value))

    env.process(waiter(env))
    env.run()
    assert hits == [(7.0, "later")]
