"""Property suite for the pluggable event queues (``repro.sim.equeue``).

Pins the contracts the engine's determinism story rests on, for *both*
queue variants:

* the tie-ordering contract — same-timestamp, same-priority events fire
  in insertion order (Hypothesis over random interleavings);
* the total order — pops come out in strictly increasing
  ``(time, priority, seq)`` no matter the push order;
* cohort maximality — ``pop_cohort`` returns exactly the maximal run of
  head-equal ``(time, priority)`` entries, in ``seq`` order;
* cancellation — a cancelled entry never surfaces, ``len`` stays exact,
  double-cancel reports False;
* selection plumbing — ``REPRO_ENGINE_QUEUE`` parsing, ``make_queue``
  pass-through, and :class:`Environment` queue injection.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.equeue import (
    ENGINE_QUEUE_ENV,
    ENGINE_QUEUES,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    engine_queue_name,
    make_queue,
)

VARIANTS = list(ENGINE_QUEUES)


def _queue(name: str) -> EventQueue:
    return make_queue(name)


# A tag standing in for the event object; comparison never reaches it
# (seq is unique), so a plain string is enough for queue-level tests.
def _entries(times, priorities=None):
    counter = itertools.count()
    out = []
    for i, t in enumerate(times):
        pri = 1 if priorities is None else priorities[i]
        out.append((float(t), pri, next(counter), f"ev{i}"))
    return out


# Times drawn from a small pool (forces same-timestamp cohorts) plus
# free-range floats (forces bucket-year wraps and resizes).
_times = st.lists(
    st.one_of(
        st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5, 7.25, 64.0, 1e6]),
        st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=200,
)


# ------------------------------------------------------- total order
@pytest.mark.parametrize("variant", VARIANTS)
@given(times=_times)
@settings(max_examples=60, deadline=None)
def test_pops_come_out_in_sorted_entry_order(variant, times):
    q = _queue(variant)
    entries = _entries(times)
    for e in entries:
        q.push(e)
    popped = [q.pop() for _ in range(len(entries))]
    assert popped == sorted(entries)
    assert len(q) == 0 and not q


@pytest.mark.parametrize("variant", VARIANTS)
@given(times=_times, priorities=st.data())
@settings(max_examples=60, deadline=None)
def test_tie_order_is_insertion_order(variant, times, priorities):
    """Entries sharing (time, priority) surface in push (seq) order."""
    pris = priorities.draw(
        st.lists(st.sampled_from([0, 1]),
                 min_size=len(times), max_size=len(times))
    )
    q = _queue(variant)
    entries = _entries(times, pris)
    for e in entries:
        q.push(e)
    popped = [q.pop() for _ in range(len(entries))]
    for (t, p), group in itertools.groupby(popped, key=lambda e: e[:2]):
        seqs = [e[2] for e in group]
        assert seqs == sorted(seqs), (
            f"tie at ({t}, {p}) fired out of insertion order: {seqs}"
        )


# --------------------------------------------------- cohort dispatch
@pytest.mark.parametrize("variant", VARIANTS)
@given(times=_times)
@settings(max_examples=60, deadline=None)
def test_pop_cohort_is_maximal_and_ordered(variant, times):
    q = _queue(variant)
    entries = _entries(times)
    for e in entries:
        q.push(e)
    drained = []
    while q:
        before = len(q)
        cohort = q.pop_cohort()
        assert len(q) == before - len(cohort)
        # One (time, priority) per cohort, seqs in insertion order.
        keys = {(e[0], e[1]) for e in cohort}
        assert len(keys) == 1
        seqs = [e[2] for e in cohort]
        assert seqs == sorted(seqs)
        # Maximality: nothing left in the queue shares the key.
        assert q.peek_key() != cohort[0][:2]
        drained.extend(cohort)
    assert drained == sorted(entries)


@pytest.mark.parametrize("variant", VARIANTS)
def test_pop_cohort_on_empty_queue_raises(variant):
    with pytest.raises(IndexError):
        _queue(variant).pop_cohort()
    with pytest.raises(IndexError):
        _queue(variant).pop()


# ------------------------------------------------------ cancellation
@pytest.mark.parametrize("variant", VARIANTS)
@given(times=_times, picks=st.data())
@settings(max_examples=60, deadline=None)
def test_cancelled_entries_never_surface(variant, times, picks):
    q = _queue(variant)
    entries = _entries(times)
    for e in entries:
        q.push(e)
    n_cancel = picks.draw(st.integers(0, len(entries)))
    idx = picks.draw(
        st.lists(st.integers(0, len(entries) - 1),
                 min_size=n_cancel, max_size=n_cancel, unique=True)
    )
    cancelled = [entries[i] for i in idx]
    for e in cancelled:
        assert q.cancel(e) is True
        assert q.cancel(e) is False  # double-cancel is a no-op
    survivors = sorted(set(entries) - set(cancelled))
    assert len(q) == len(survivors)
    assert [q.pop() for _ in range(len(q))] == survivors


@pytest.mark.parametrize("variant", VARIANTS)
def test_cancel_of_never_pushed_entry_is_false(variant):
    q = _queue(variant)
    q.push((1.0, 1, 0, "real"))
    assert q.cancel((1.0, 1, 99, "ghost")) is False
    assert len(q) == 1


# ------------------------------------------------------- peek family
@pytest.mark.parametrize("variant", VARIANTS)
def test_peek_and_peek_key(variant):
    q = _queue(variant)
    assert q.peek() == float("inf")
    assert q.peek_key() is None
    q.push((3.0, 1, 0, "later"))
    q.push((2.0, 0, 1, "sooner"))
    assert q.peek() == 2.0
    assert q.peek_key() == (2.0, 0)
    assert q.pop()[3] == "sooner"
    assert q.peek_key() == (3.0, 1)


# ------------------------------------------------- calendar internals
def test_calendar_resizes_up_and_down():
    q = CalendarQueue()
    entries = _entries([float(i) for i in range(256)])
    for e in entries:
        q.push(e)
    assert q._n_buckets > CalendarQueue._MIN_BUCKETS
    drained = [q.pop() for _ in range(len(entries))]
    assert drained == entries
    assert q._n_buckets == CalendarQueue._MIN_BUCKETS


def test_calendar_survives_far_future_jump():
    """A sparse far-future entry needs the full-year-miss fallback."""
    q = CalendarQueue()
    q.push((1e12, 1, 0, "far"))
    q.push((2e12, 1, 1, "farther"))
    assert q.peek() == 1e12
    assert q.pop()[3] == "far"
    assert q.pop()[3] == "farther"


def test_calendar_rejects_bad_construction():
    with pytest.raises(ValueError):
        CalendarQueue(n_buckets=0)
    with pytest.raises(ValueError):
        CalendarQueue(width=0.0)


# --------------------------------------------------------- selection
def test_engine_queue_name_defaults_to_heap(monkeypatch):
    monkeypatch.delenv(ENGINE_QUEUE_ENV, raising=False)
    assert engine_queue_name() == "heap"
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "")
    assert engine_queue_name() == "heap"
    monkeypatch.setenv(ENGINE_QUEUE_ENV, " Calendar ")
    assert engine_queue_name() == "calendar"


def test_engine_queue_name_rejects_unknown(monkeypatch):
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "ladder")
    with pytest.raises(ValueError, match="ladder"):
        engine_queue_name()


def test_make_queue_variants_and_passthrough(monkeypatch):
    monkeypatch.delenv(ENGINE_QUEUE_ENV, raising=False)
    assert isinstance(make_queue(), HeapQueue)
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    assert isinstance(make_queue(), CalendarQueue)
    assert isinstance(make_queue("heap"), HeapQueue)
    injected = CalendarQueue()
    assert make_queue(injected) is injected
    with pytest.raises(ValueError):
        make_queue("splay")


@pytest.mark.parametrize("variant", VARIANTS)
def test_environment_reports_injected_queue(variant):
    env = Environment(queue=variant)
    assert env.engine_queue == variant


def test_environment_follows_env_var(monkeypatch):
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    assert Environment().engine_queue == "calendar"
    monkeypatch.delenv(ENGINE_QUEUE_ENV, raising=False)
    assert Environment().engine_queue == "heap"


# --------------------------------------- engine-level tie ordering
@pytest.mark.parametrize("variant", VARIANTS)
@given(delays=st.lists(st.sampled_from([1.0, 2.0, 2.0, 3.0]),
                       min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_same_time_processes_fire_in_creation_order(variant, delays):
    """Random interleavings: processes sharing a wake time fire in the
    order they were created, under both variants."""
    env = Environment(queue=variant)
    fired = []

    def proc(env, i, d):
        yield env.timeout(d)
        fired.append((env.now, i))

    for i, d in enumerate(delays):
        env.process(proc(env, i, d))
    env.run()
    expected = sorted(
        ((d, i) for i, d in enumerate(delays)),
    )
    assert fired == [(d, i) for d, i in expected]
