"""Unit tests for the DES core: events, timeouts, processes, composites."""

import pytest

from repro.errors import DeadlockError, ProcessInterrupt, SimulationError
from repro.sim import AllOf, AnyOf, Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run(p)
    assert env.now == 5.0
    assert p.value == 5.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        return "payload"

    assert env.run(env.process(proc(env))) == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for d in (1.0, 2.0, 3.0):
            yield env.timeout(d)
            times.append(env.now)

    env.run(env.process(proc(env)))
    assert times == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 1.5))
    env.run()
    assert order == ["a", "b", "a", "b"]


def test_same_time_events_fire_in_insertion_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(3.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(3.0, "open")]


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        with pytest.raises(RuntimeError, match="boom"):
            yield gate
        return "handled"

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    p = env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert p.value == "handled"


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(bad(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_process_waiting_on_finished_process_gets_value():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return 7

    def parent(env):
        c = env.process(child(env))
        value = yield c
        return value * 2

    p = env.process(parent(env))
    env.run()
    assert p.value == 14


def test_waiting_on_already_processed_event():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "early"

    def parent(env, c):
        yield env.timeout(5.0)  # child long done by now
        value = yield c
        return value

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.run()
    assert p.value == "early"
    assert env.now == 5.0  # waiting on a done event costs no time


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, v):
        yield env.timeout(2.0)
        v.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(2.0, "preempted")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt:
            yield env.timeout(1.0)
        return env.now

    def attacker(env, v):
        yield env.timeout(2.0)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == 3.0


def test_all_of_collects_values():
    env = Environment()

    def proc(env, delay, value):
        yield env.timeout(delay)
        return value

    def waiter(env):
        ps = [env.process(proc(env, d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield AllOf(env, ps)
        return (env.now, values)

    p = env.process(waiter(env))
    env.run()
    assert p.value == (3.0, [30.0, 10.0, 20.0])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def waiter(env):
        values = yield AllOf(env, [])
        return values

    p = env.process(waiter(env))
    env.run()
    assert p.value == []


def test_any_of_returns_first():
    env = Environment()

    def proc(env, delay, value):
        yield env.timeout(delay)
        return value

    def waiter(env):
        ps = [env.process(proc(env, d, d)) for d in (3.0, 1.0, 2.0)]
        value = yield AnyOf(env, ps)
        return (env.now, value)

    p = env.process(waiter(env))
    env.run()
    assert p.value == (1.0, 1.0)


def test_run_until_time_stops_exactly():
    env = Environment()
    hits = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            hits.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_backwards_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_deadlock_detection_when_waiting_on_unfired_event():
    env = Environment()
    gate = env.event()

    def waiter(env):
        yield gate

    p = env.process(waiter(env))
    with pytest.raises(DeadlockError):
        env.run(p)


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_determinism_across_runs():
    def build_and_run():
        env = Environment()
        order = []

        def proc(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                order.append((env.now, name))

        env.process(proc(env, "x", [1, 1, 1]))
        env.process(proc(env, "y", [1.5, 0.5, 1]))
        env.process(proc(env, "z", [0.5, 2.5]))
        env.run()
        return order

    assert build_and_run() == build_and_run()
