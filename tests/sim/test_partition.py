"""Unit and property tests for conservative window coordination.

The golden-digest suite (``tests/runtime/test_partitioned_golden.py``)
pins the end-to-end contract; these tests pin the coordination layer in
isolation: rank assignment, lookahead/horizon math, the coordinator's
stepping semantics (skip of provably-inert partitions, split-phase fan
out), and — via Hypothesis over real :class:`~repro.sim.Environment`
instances — the safety property the whole design rests on: **no event
ever executes past its partition's safe horizon**.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    Environment,
    Event,
    Export,
    WindowCoordinator,
    WindowReport,
    lookahead_matrix,
    partition_ranks,
    safe_horizons,
)

INF = float("inf")


# ------------------------------------------------------ partition_ranks
def test_partition_ranks_contiguous_and_balanced():
    parts = partition_ranks(8, 3)
    assert parts == [[0, 1, 2], [3, 4, 5], [6, 7]]
    flat = [r for ranks in parts for r in ranks]
    assert flat == list(range(8))


def test_partition_ranks_one_partition_owns_all():
    assert partition_ranks(4, 1) == [[0, 1, 2, 3]]


def test_partition_ranks_rejects_bad_counts():
    with pytest.raises(ValueError):
        partition_ranks(4, 0)
    with pytest.raises(ValueError):
        partition_ranks(2, 3)


# ------------------------------------------- lookahead / safe_horizons
class _FakeTopology:
    """Minimum pairwise latency = |src - dst| microseconds."""

    def partition_lookahead(self, src_ranks, dst_ranks, extra_latency=0.0):
        return (
            min(abs(s - d) for s in src_ranks for d in dst_ranks)
            + extra_latency
        )


def test_lookahead_matrix_covers_ordered_pairs():
    parts = [[0, 1], [2, 3]]
    la = lookahead_matrix(_FakeTopology(), parts)
    assert set(la) == {(0, 1), (1, 0)}
    assert la[(0, 1)] == 1.0  # rank 1 -> rank 2


def test_lookahead_matrix_extra_latency_added_everywhere():
    parts = [[0], [1], [2]]
    la = lookahead_matrix(_FakeTopology(), parts, extra_latency=10.0)
    assert all(v >= 11.0 for v in la.values())


def test_safe_horizons_min_over_neighbors_and_echo():
    la = {(0, 1): 2.0, (1, 0): 3.0, (0, 2): 5.0, (2, 0): 5.0,
          (1, 2): 1.0, (2, 1): 1.0}
    horizons = safe_horizons([10.0, 20.0, 30.0], la)
    # L_min = 1, so the echo bound is F_p + 2.
    # H_0 = min(20+3, 30+5, 10+2); H_1 = min(10+2, 30+1, 20+2);
    # H_2 = min(10+5, 20+1, 30+2)
    assert horizons == [12.0, 12.0, 15.0]


def test_safe_horizons_classic_bound_when_tighter():
    # Neighbor bound below the echo bound: classic formula untouched.
    horizons = safe_horizons([10.0, 10.5], {(0, 1): 2.0, (1, 0): 2.0})
    assert horizons == [12.5, 12.0]


def test_safe_horizons_single_partition_is_unbounded():
    assert safe_horizons([5.0], {}) == [INF]


def test_safe_horizons_drained_neighbor_leaves_echo_bound():
    # A drained neighbor (frontier inf) imposes no neighbor bound, but
    # the echo bound keeps the horizon finite: this partition's own
    # sends could reawaken the neighbor, whose reply needs two hops.
    horizons = safe_horizons([1.0, INF], {(0, 1): 2.0, (1, 0): 2.0})
    assert horizons == [5.0, 3.0]


# ------------------------------------------------- scripted fake hosts
class ScriptHost:
    """A partition that retires scripted jobs and forwards hops.

    Each job is ``(time, hops)``: executing it at ``time`` consumes one
    work token; if ``hops`` remain it exports a follow-on job to the
    other partition arriving after the link lookahead (plus a strictly
    positive serialization delta, as the real fabric guarantees).
    """

    def __init__(self, pid, rank, peer_rank, jobs, la, delta=0.25):
        self.pid = pid
        self.rank = rank
        self.peer_rank = peer_rank
        self.jobs = list(jobs)
        self.la = la
        self.delta = delta
        self.net = 0
        self.last_delta = 0.0
        self.exports = []
        self.executed = []  # (window_index, time)
        self.window = -1
        self.step_calls = 0
        self.env = Environment()
        self._seq = 0

    def _schedule(self, when, hops):
        event = Event(self.env)
        event._value = None
        event._ok = True
        event.callbacks.append(
            lambda _ev, t=when, h=hops: self._execute(t, h)
        )
        self.env.schedule_at(event, when)

    def _execute(self, when, hops):
        self.executed.append((self.window, when))
        self.net -= 1
        self.last_delta = when
        if hops > 0:
            arrival = when + self.la + self.delta
            self.net += 1
            self.last_delta = when
            self.exports.append(
                Export(
                    arrival_time=arrival, send_time=when, src=self.rank,
                    dst=self.peer_rank, payload_bytes=8,
                    payload=hops - 1, link_seq=self._seq,
                )
            )
            self._seq += 1

    def start(self):
        for when, hops in self.jobs:
            self.net += 1
            self._schedule(when, hops)
        return len(self.jobs)

    def step_window(self, horizon, imports):
        self.step_calls += 1
        self.window += 1
        before = len(self.executed)
        for exp in imports:
            self._schedule(exp.arrival_time, exp.payload)
        if horizon > self.env.now:
            self.env.run(until=horizon)
        return WindowReport(
            frontier=self.env.peek(),
            net_tokens=self.net,
            last_delta_time=self.last_delta,
            exports=self.exports_drain(),
            events=len(self.executed) - before,
        )

    def exports_drain(self):
        out, self.exports = self.exports, []
        return out

    def finalize(self, t_done):
        return t_done


def _make_pair(jobs0, jobs1, la=2.0):
    hosts = [
        ScriptHost(0, rank=0, peer_rank=1, jobs=jobs0, la=la),
        ScriptHost(1, rank=1, peer_rank=0, jobs=jobs1, la=la),
    ]
    lookahead = {(0, 1): la, (1, 0): la}
    coord = WindowCoordinator(hosts, lookahead)
    coord.set_rank_owners([[0], [1]])
    return hosts, coord


def test_coordinator_runs_local_jobs_to_quiescence():
    hosts, coord = _make_pair([(1.0, 0), (4.0, 0)], [(2.0, 0)])
    t_done = coord.run()
    assert t_done == 4.0
    assert [t for _, t in hosts[0].executed] == [1.0, 4.0]
    assert [t for _, t in hosts[1].executed] == [2.0]
    assert coord.stats.total_events == 3
    assert coord.stats.total_exports == 0


def test_coordinator_routes_cross_partition_hops():
    # One job ping-pongs 0 -> 1 -> 0; termination waits for the tail.
    hosts, coord = _make_pair([(1.0, 2)], [])
    t_done = coord.run()
    assert len(hosts[0].executed) == 2
    assert len(hosts[1].executed) == 1
    assert coord.stats.total_exports == 2
    assert t_done == pytest.approx(1.0 + 2 * 2.25)


def test_coordinator_requires_seed_work():
    hosts, coord = _make_pair([], [])
    with pytest.raises(SimulationError):
        coord.run()


def test_coordinator_rejects_duplicate_rank_owner():
    hosts, coord = _make_pair([(1.0, 0)], [])
    with pytest.raises(ValueError):
        coord.set_rank_owners([[0], [0]])


def test_coordinator_negative_global_balance_raises():
    hosts, coord = _make_pair([(1.0, 0)], [])
    hosts[0].net = -1  # simulate a double-retire

    original = hosts[0].step_window

    def corrupting(horizon, imports):
        report = original(horizon, imports)
        report.net_tokens = -1
        return report

    hosts[0].step_window = corrupting
    with pytest.raises(SimulationError):
        coord.run()


def test_coordinator_skips_provably_inert_partitions():
    # Partition 1's only job is far in the future; once windows are
    # rolling, the coordinator must synthesize its idle reports rather
    # than paying a host call (pooled: an IPC roundtrip) per window.
    hosts, coord = _make_pair(
        [(1.0, 0), (2.0, 0), (3.0, 0)], [(100.0, 0)], la=0.5
    )
    coord.run()
    assert hosts[1].step_calls < coord.stats.windows
    assert coord.stats.idle_partition_windows > 0
    # Correctness: the far job still ran, exactly once, at its time.
    assert [t for _, t in hosts[1].executed] == [100.0]


def test_skipped_partition_still_receives_imports():
    # A hop lands on a partition that was being skipped: the pending
    # import must force it back into the stepped set.
    hosts, coord = _make_pair([(1.0, 1)], [(50.0, 0)], la=0.5)
    coord.run()
    times1 = sorted(t for _, t in hosts[1].executed)
    assert times1 == [1.75, 50.0]


class SplitHost(ScriptHost):
    """ScriptHost exposing the split-phase pair, recording call order."""

    trace: list = []

    def begin_window(self, horizon, imports):
        SplitHost.trace.append(("begin", self.pid))
        self._pending = (horizon, list(imports))

    def end_window(self):
        SplitHost.trace.append(("end", self.pid))
        horizon, imports = self._pending
        return self.step_window(horizon, imports)


def test_split_phase_fans_out_before_gathering():
    SplitHost.trace = []
    hosts = [
        SplitHost(0, rank=0, peer_rank=1, jobs=[(1.0, 1)], la=2.0),
        SplitHost(1, rank=1, peer_rank=0, jobs=[(2.0, 0)], la=2.0),
    ]
    coord = WindowCoordinator(hosts, {(0, 1): 2.0, (1, 0): 2.0})
    coord.set_rank_owners([[0], [1]])
    coord.run()
    # Within any window, every begin precedes every end.
    trace = SplitHost.trace
    assert trace, "split-phase protocol was never used"
    opens = 0
    for kind, _pid in trace:
        if kind == "begin":
            opens += 1
        else:
            assert opens > 0
            # an end may only follow once all begins of its window are
            # out; the coordinator's shape guarantees begins come in a
            # burst, so a "begin" never appears between two "end"s of
            # the same window.
    ends = [i for i, (kind, _p) in enumerate(trace) if kind == "end"]
    begins = [i for i, (kind, _p) in enumerate(trace) if kind == "begin"]
    assert min(ends) > min(begins)


def test_split_phase_matches_sequential_results():
    def run_with(cls):
        hosts = [
            cls(0, rank=0, peer_rank=1, jobs=[(1.0, 2), (3.0, 0)], la=1.0),
            cls(1, rank=1, peer_rank=0, jobs=[(2.0, 1)], la=1.0),
        ]
        coord = WindowCoordinator(hosts, {(0, 1): 1.0, (1, 0): 1.0})
        coord.set_rank_owners([[0], [1]])
        t_done = coord.run()
        return t_done, [sorted(t for _, t in h.executed) for h in hosts]

    SplitHost.trace = []
    assert run_with(ScriptHost) == run_with(SplitHost)


# ------------------------------------------------- the safety property
@settings(max_examples=60, deadline=None)
@given(
    jobs0=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=40.0),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=6,
    ),
    jobs1=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=40.0),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=6,
    ),
    la=st.floats(min_value=0.125, max_value=8.0),
)
def test_no_event_executes_past_its_horizon(jobs0, jobs1, la):
    """The conservative contract, pinned over real Environments.

    Every executed event's time must be <= the executing partition's
    safe horizon for the window it ran in, executed times per
    partition never retreat, and every job (including every forwarded
    hop) retires exactly once.
    """
    if not jobs0 and not jobs1:
        jobs0 = [(1.0, 0)]
    hosts, coord = _make_pair(jobs0, jobs1, la=la)
    checks = []  # (partition, window, time, horizon)
    marks = [0, 0]

    def on_window(w, horizons, reports):
        for p, host in enumerate(hosts):
            for _, when in host.executed[marks[p]:]:
                checks.append((p, w, when, horizons[p]))
            marks[p] = len(host.executed)

    coord.on_window = on_window
    t_done = coord.run()

    expected = sum(1 + hops for _, hops in jobs0 + jobs1)
    executed = sum(len(h.executed) for h in hosts)
    assert executed == expected

    for p, window, when, horizon in checks:
        assert when <= horizon, (
            f"partition {p} executed t={when} past horizon "
            f"{horizon} in window {window}"
        )
    for p, host in enumerate(hosts):
        times = [t for _, t in host.executed]
        assert times == sorted(times)  # time sweeps forward
    all_times = [t for h in hosts for _, t in h.executed]
    assert t_done == pytest.approx(max(all_times))
