"""Golden-trace determinism suite.

The harness's whole caching/parallelism story rests on one contract:
*same spec -> bit-identical run*, regardless of which execution path
produced it.  These tests pin that contract at two levels:

* **event level** — the optimized inlined event loop and the reference
  one-``step()``-per-event loop dispatch the exact same event sequence
  (digested as (time, priority, seq, event type) tuples) for seeded
  BFS and PageRank runs;
* **result level** — the serial runner, the pooled runner, and a
  cache-hit replay of fixed seeded runs all produce the same
  :meth:`RunResult.digest`.
"""

import hashlib

import pytest

from repro.config import daisy
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.apps import AtosBFS, AtosPageRank
from repro.harness import RunSpec, clear_memory_cache, run_cells, run_grid
from repro.runtime import AtosConfig, AtosExecutor


# ----------------------------------------------------- event-level traces
class TraceDigest:
    """Folds every dispatched heap entry into one SHA-256."""

    def __init__(self):
        self._hash = hashlib.sha256()
        self.n_events = 0

    def __call__(self, entry):
        when, priority, seq, event = entry
        self.n_events += 1
        self._hash.update(
            f"{when!r}|{priority}|{seq}|{type(event).__name__}\n".encode()
        )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _traced_run(app_factory, machine, config, reference: bool):
    executor = AtosExecutor(machine, app_factory(), config)
    digest = TraceDigest()
    executor.env.trace_hook = digest
    executor.env.reference_loop = reference
    makespan, counters = executor.run()
    return digest, makespan, dict(counters)


def _bfs_app():
    g = rmat(scale=8, edge_factor=6, seed=31)
    return AtosBFS(g, bfs_grow_partition(g, 2, seed=0),
                   largest_component_vertex(g))


def _pagerank_app():
    g = rmat(scale=7, edge_factor=6, seed=7)
    return AtosPageRank(g, bfs_grow_partition(g, 2, seed=0), epsilon=1e-4)


@pytest.mark.parametrize(
    "app_factory,config",
    [
        (_bfs_app, AtosConfig(fetch_size=1)),
        (_pagerank_app, AtosConfig()),
    ],
    ids=["bfs", "pagerank"],
)
def test_optimized_loop_matches_reference_loop(app_factory, config):
    fast = _traced_run(app_factory, daisy(2), config, reference=False)
    slow = _traced_run(app_factory, daisy(2), config, reference=True)
    assert fast[0].n_events == slow[0].n_events > 0
    assert fast[0].hexdigest() == slow[0].hexdigest()
    assert fast[1] == slow[1]  # makespan
    assert fast[2] == slow[2]  # counters


def test_trace_digest_stable_across_repeats():
    a = _traced_run(_bfs_app, daisy(2), AtosConfig(fetch_size=1), False)
    b = _traced_run(_bfs_app, daisy(2), AtosConfig(fetch_size=1), False)
    assert a[0].hexdigest() == b[0].hexdigest()


# -------------------------------------------------- result-level digests
#: The fixed seeded runs whose digests every execution path must agree
#: on: both apps, two frameworks, one and two GPUs.
GOLDEN_SPECS = [
    RunSpec("atos-standard-persistent", "bfs", "hollywood-2009", "daisy", 1),
    RunSpec("atos-priority-discrete", "bfs", "hollywood-2009", "daisy", 2),
    RunSpec("gunrock", "pagerank", "hollywood-2009", "daisy", 2),
]


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """Point the persistent cache at an empty directory, empty memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_memory_cache()
    yield
    clear_memory_cache()


def _digests(results):
    return [results[spec].digest() for spec in GOLDEN_SPECS]


def test_serial_pooled_and_cached_digests_agree(fresh_cache):
    serial = _digests(run_cells(GOLDEN_SPECS, jobs=1))

    # Pooled: force genuine recomputation in workers by clearing both
    # the memo and their view of the parent's memo (fork inherits it).
    clear_memory_cache()
    cells = run_grid(GOLDEN_SPECS, jobs=2, timeout_s=300.0)
    assert [cell.status for cell in cells] == ["ok"] * len(GOLDEN_SPECS)
    assert [cell.spec for cell in cells] == GOLDEN_SPECS  # spec order
    pooled = [cell.result.digest() for cell in cells]

    # Cache-hit replay: drop the memo so every run is served from disk.
    clear_memory_cache()
    replay_results = run_cells(GOLDEN_SPECS, jobs=1)
    replayed = _digests(replay_results)
    for spec in GOLDEN_SPECS:
        assert replay_results[spec].cache_hits == 1
        assert replay_results[spec].cache_misses == 0

    assert serial == pooled == replayed


def test_cache_replay_preserves_exact_output_bytes(fresh_cache):
    spec = GOLDEN_SPECS[0]
    first = run_cells([spec], jobs=1)[spec]
    clear_memory_cache()
    again = run_cells([spec], jobs=1)[spec]
    assert again is not first  # really deserialized, not memoized
    assert again.digest() == first.digest()
    assert again.time_ms == first.time_ms
    assert dict(again.counters) == dict(first.counters)
