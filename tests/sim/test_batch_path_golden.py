"""Golden-trace equivalence of the vectorized data path.

The batched queue -> aggregator -> executor pipeline
(:mod:`repro.batchpath`) is a host-side optimization: it must not
change the *simulated* execution at all.  This suite pins that the
``REPRO_BATCH_PATH=0`` reference path and the default batched path are
bit-identical:

* **event level** — the full DES event sequence (time, priority, seq,
  event type) digests identically for BFS and PageRank executors,
  including aggregator-on and segment-buffered configurations;
* **result level** — :meth:`RunResult.digest` (simulated time, every
  counter, exact output bytes) agrees between the paths for seeded
  harness runs, both serial and pooled.

The persistent cache must be disabled (or pointed at a fresh
directory) around these comparisons: the cache key does not include
the flag — correctly, since the paths are behaviorally identical — so
a cache hit would trivially equalize the digests being compared.
"""

import pytest

from repro.batchpath import BATCH_PATH_ENV, batch_path_enabled
from repro.config import daisy, summit_ib
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.apps import AtosBFS, AtosPageRank
from repro.harness import RunSpec, clear_memory_cache, run_cells, run_grid
from repro.runtime import AtosConfig, AtosExecutor

from tests.sim.test_golden_traces import TraceDigest


def _bfs_app():
    g = rmat(scale=8, edge_factor=6, seed=31)
    return AtosBFS(g, bfs_grow_partition(g, 4, seed=0),
                   largest_component_vertex(g))


def _pagerank_app():
    g = rmat(scale=7, edge_factor=6, seed=7)
    return AtosPageRank(g, bfs_grow_partition(g, 4, seed=0), epsilon=1e-4)


def _traced_run(app_factory, machine, config, monkeypatch, flag):
    monkeypatch.setenv(BATCH_PATH_ENV, flag)
    assert batch_path_enabled() == (flag == "1")
    executor = AtosExecutor(machine, app_factory(), config)
    assert executor.batch_path == (flag == "1")
    digest = TraceDigest()
    executor.env.trace_hook = digest
    makespan, counters = executor.run()
    return digest, makespan, dict(counters)


#: Configurations chosen to exercise every branch the flag gates:
#: eager per-round sends, the aggregator (size and timeout flushes),
#: segment buffering through ``add_many``, and the no-aggregator
#: direct-message path.
CONFIGS = [
    ("bfs-eager", _bfs_app, daisy(4), AtosConfig(fetch_size=1)),
    (
        "bfs-aggregated",
        _bfs_app,
        summit_ib(4),
        AtosConfig(fetch_size=1, wait_time=8, use_aggregator=True),
    ),
    (
        "pagerank-aggregated-segments",
        _pagerank_app,
        summit_ib(4),
        AtosConfig(wait_time=32, segment_rounds=2, use_aggregator=True),
    ),
    (
        "pagerank-segments-no-aggregator",
        _pagerank_app,
        daisy(4),
        AtosConfig(segment_rounds=3, use_aggregator=False),
    ),
]


@pytest.mark.parametrize(
    "app_factory,machine,config",
    [c[1:] for c in CONFIGS],
    ids=[c[0] for c in CONFIGS],
)
def test_batched_path_trace_identical_to_reference(
    app_factory, machine, config, monkeypatch
):
    batched = _traced_run(app_factory, machine, config, monkeypatch, "1")
    reference = _traced_run(app_factory, machine, config, monkeypatch, "0")
    assert batched[0].n_events == reference[0].n_events > 0
    assert batched[0].hexdigest() == reference[0].hexdigest()
    assert batched[1] == reference[1]  # makespan
    assert batched[2] == reference[2]  # counters


# -------------------------------------------------- result-level digests
GOLDEN_SPECS = [
    RunSpec("atos-standard-persistent", "bfs", "hollywood-2009",
            "summit-ib", 4),
    RunSpec("atos-standard-persistent", "pagerank", "hollywood-2009",
            "summit-ib", 2),
]


@pytest.fixture()
def no_cache(monkeypatch):
    """Disable the persistent cache and clear the in-process memo."""
    monkeypatch.setenv("REPRO_CACHE", "0")
    clear_memory_cache()
    yield
    clear_memory_cache()


def _run_serial(monkeypatch, flag):
    monkeypatch.setenv(BATCH_PATH_ENV, flag)
    clear_memory_cache()
    results = run_cells(GOLDEN_SPECS, jobs=1)
    return [results[spec].digest() for spec in GOLDEN_SPECS]


def test_serial_digests_agree_across_paths(no_cache, monkeypatch):
    assert _run_serial(monkeypatch, "0") == _run_serial(monkeypatch, "1")


def test_pooled_digests_agree_across_paths(no_cache, monkeypatch):
    digests = {}
    for flag in ("0", "1"):
        # Workers inherit the flag through fork.
        monkeypatch.setenv(BATCH_PATH_ENV, flag)
        clear_memory_cache()
        cells = run_grid(GOLDEN_SPECS, jobs=2, timeout_s=300.0)
        assert [c.status for c in cells] == ["ok"] * len(GOLDEN_SPECS)
        digests[flag] = [c.result.digest() for c in cells]
    assert digests["0"] == digests["1"]
