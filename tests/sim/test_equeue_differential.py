"""Differential harness: heap vs calendar must be indistinguishable.

The calendar queue is only allowed to exist because nothing observable
changes when it is switched on.  This suite pins that at three levels:

* **queue level** — identical operation sequences (pushes, pops, cohort
  pops, cancellations, re-schedules) applied to both variants produce
  identical results, both for seeded ``random`` fuzz (the failing seed
  is in the assertion message for replay) and under Hypothesis;
* **engine level** — bit-identical golden trace digests heap-vs-calendar
  for seeded BFS and PageRank runs, across fault plans (none, inert,
  message chaos, fail-stop crash + recovery), and the calendar's
  cohort-batched fast loop against the one-``step()``-per-event
  reference loop;
* **grid level** — the chaos and recovery inertness guarantees
  (zero-fault plans trace-identical to no plan; crash-free runs
  recovery-inert) hold under ``REPRO_ENGINE_QUEUE=calendar`` too.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import daisy
from repro.faults import CrashEvent, FaultPlan
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.apps import AtosBFS, AtosPageRank
from repro.harness.chaos import (
    ChaosSpec,
    trace_digest_for,
    verify_inert,
    verify_recovery_inert,
)
from repro.recovery import RecoveryPolicy
from repro.runtime import AtosConfig, AtosExecutor
from repro.sim.equeue import ENGINE_QUEUE_ENV, CalendarQueue, HeapQueue

from tests.sim.test_golden_traces import TraceDigest, _bfs_app, _pagerank_app


# ------------------------------------------------------ queue-level fuzz
def _drive(queue, ops):
    """Apply one op sequence; return the observable transcript."""
    out = []
    for op in ops:
        kind = op[0]
        if kind == "push":
            queue.push(op[1])
            out.append(("len", len(queue)))
        elif kind == "pop":
            out.append(("pop", queue.pop()) if queue else ("empty",))
        elif kind == "cohort":
            out.append(
                ("cohort", tuple(queue.pop_cohort()))
                if queue
                else ("empty",)
            )
        elif kind == "cancel":
            out.append(("cancel", queue.cancel(op[1])))
        elif kind == "peek":
            out.append(("peek", queue.peek(), queue.peek_key()))
    while queue:
        out.append(("drain", queue.pop()))
    return out


def _fuzz_ops(rng, n_ops):
    """A random op sequence with collisions, cancels, and re-schedules."""
    ops = []
    pending = []  # entries believed still queued (approximate is fine)
    seq = 0
    times = [0.0, 1.0, 1.0, 2.5, 4.0, 7.25, 100.0]
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.55 or not pending:
            # Push: mostly pool times (cohorts), sometimes free-range,
            # sometimes an exact re-schedule of a cancelled/popped time.
            t = (
                rng.choice(times)
                if rng.random() < 0.7
                else rng.uniform(0.0, 1000.0)
            )
            entry = (t, rng.choice((0, 1)), seq, f"e{seq}")
            seq += 1
            pending.append(entry)
            ops.append(("push", entry))
        elif roll < 0.70:
            victim = rng.choice(pending)
            pending.remove(victim)
            ops.append(("cancel", victim))
            if rng.random() < 0.5:  # re-schedule the cancelled event
                entry = (victim[0], victim[1], seq, f"re{seq}")
                seq += 1
                pending.append(entry)
                ops.append(("push", entry))
        elif roll < 0.85:
            ops.append(("pop",))
            pending.sort()
            if pending:
                pending.pop(0)
        elif roll < 0.95:
            ops.append(("cohort",))
            pending.sort()
            if pending:
                key = pending[0][:2]
                pending = [e for e in pending if e[:2] != key]
        else:
            ops.append(("peek",))
    return ops


@pytest.mark.parametrize("seed", range(25))
def test_differential_fuzz_heap_vs_calendar(seed):
    ops = _fuzz_ops(random.Random(seed), 300)
    heap = _drive(HeapQueue(), ops)
    calendar = _drive(CalendarQueue(), ops)
    assert heap == calendar, (
        f"heap/calendar diverged at seed={seed} "
        f"(replay: _fuzz_ops(random.Random({seed}), 300))"
    )


@given(seed=st.integers(0, 2**32 - 1), n_ops=st.integers(1, 400))
@settings(max_examples=50, deadline=None)
def test_differential_fuzz_hypothesis(seed, n_ops):
    ops = _fuzz_ops(random.Random(seed), n_ops)
    assert _drive(HeapQueue(), ops) == _drive(CalendarQueue(), ops), (
        f"heap/calendar diverged at seed={seed}, n_ops={n_ops}"
    )


# --------------------------------------------------- engine-level golden
def _traced(app_factory, config, queue, reference=False):
    executor = AtosExecutor(daisy(2), app_factory(), config)
    assert executor.env.engine_queue == queue  # env var actually applied
    digest = TraceDigest()
    executor.env.trace_hook = digest
    executor.env.reference_loop = reference
    makespan, counters = executor.run()
    return digest.hexdigest(), digest.n_events, makespan, dict(counters)


APPS = [
    pytest.param(_bfs_app, AtosConfig(fetch_size=1), id="bfs"),
    pytest.param(_pagerank_app, AtosConfig(), id="pagerank"),
]


@pytest.mark.parametrize("app_factory,config", APPS)
def test_golden_digest_identical_heap_vs_calendar(
    app_factory, config, monkeypatch
):
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "heap")
    heap = _traced(app_factory, config, "heap")
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    calendar = _traced(app_factory, config, "calendar")
    assert heap[1] > 0
    assert heap == calendar


@pytest.mark.parametrize("app_factory,config", APPS)
def test_calendar_fast_loop_matches_reference_loop(
    app_factory, config, monkeypatch
):
    """The cohort-batched dispatcher vs one-step()-per-event, both on
    the calendar queue — the same pin the heap loop has always had."""
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    fast = _traced(app_factory, config, "calendar", reference=False)
    slow = _traced(app_factory, config, "calendar", reference=True)
    assert fast[1] == slow[1] > 0
    assert fast == slow


#: Fault plans the engine digest must survive identically: none, an
#: inert plan, live message chaos, and a fail-stop crash with recovery.
FAULT_CELLS = [
    pytest.param(None, None, id="no-plan"),
    pytest.param(FaultPlan(seed=9), None, id="inert-plan"),
    pytest.param(
        FaultPlan(seed=0, drop_rate=0.1, duplicate_rate=0.05,
                  delay_rate=0.1),
        None,
        id="message-chaos",
    ),
    pytest.param(
        FaultPlan(seed=0, crashes=(CrashEvent(pe=1, at=15.0),)),
        RecoveryPolicy(),
        id="crash-recovery",
    ),
]


@pytest.mark.parametrize("faults,recovery", FAULT_CELLS)
def test_fault_plan_digests_identical_heap_vs_calendar(
    faults, recovery, monkeypatch
):
    spec = ChaosSpec(app="bfs", variant="standard-persistent",
                     drop_rate=0.0, seed=0)
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "heap")
    heap = trace_digest_for(spec, faults, recovery)
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    calendar = trace_digest_for(spec, faults, recovery)
    assert heap == calendar


# ------------------------------------------------- grid-level inertness
def test_chaos_inertness_holds_under_calendar(monkeypatch):
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    assert verify_inert(seed=0, apps=("bfs",))


def test_recovery_inertness_holds_under_calendar(monkeypatch):
    monkeypatch.setenv(ENGINE_QUEUE_ENV, "calendar")
    assert verify_recovery_inert(seed=0, apps=("bfs",))
