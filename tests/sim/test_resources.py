"""Unit tests for Resource / Store / PriorityStore / Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, PriorityStore, Resource, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, name, hold):
        req = res.request()
        yield req
        granted.append((env.now, name))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, "a", 5.0))
    env.process(user(env, "b", 5.0))
    env.process(user(env, "c", 1.0))
    env.run()
    # a and b get slots at t=0; c must wait until one releases at t=5.
    assert granted == [(0.0, "a"), (0.0, "b"), (5.0, "c")]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    for name in "abcd":
        env.process(user(env, name))
    env.run()
    assert order == list("abcd")


def test_resource_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        req = res.request()
        yield req
        assert res.count == 1
        yield env.timeout(2.0)
        res.release(req)

    def waiter(env):
        yield env.timeout(1.0)
        req = res.request()
        assert res.queue_length == 1
        yield req
        res.release(req)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_unknown_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    env2 = Environment()
    foreign = env2.event()
    with pytest.raises(SimulationError):
        res.release(foreign)


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def canceller(env):
        yield env.timeout(1.0)
        req = res.request()  # will be queued
        res.release(req)  # cancel before grant
        assert res.queue_length == 0

    env.process(holder(env))
    env.process(canceller(env))
    env.run()


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield store.put("x")
        yield env.timeout(1.0)
        yield store.put("y")

    def consumer(env):
        for _ in range(2):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(0.0, "x"), (1.0, "y")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(4.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(4.0, "late")]


def test_store_fifo():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    out = []

    def consumer(env):
        for _ in range(5):
            out.append((yield store.get()))

    env.process(consumer(env))
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer(env):
        yield store.put("a")
        events.append(("put-a", env.now))
        yield store.put("b")  # blocks until a consumed
        events.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        item = yield store.get()
        events.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 3.0) in events


def test_store_try_get_and_try_put():
    env = Environment()
    store = Store(env, capacity=1)
    ok, item = store.try_get()
    assert not ok and item is None
    assert store.try_put("x")
    assert not store.try_put("y")  # full
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# ---------------------------------------------------------- PriorityStore
def test_priority_store_orders_items():
    env = Environment()
    ps = PriorityStore(env)
    for v in (5, 1, 3, 2, 4):
        ps.put(v)
    out = []

    def consumer(env):
        for _ in range(5):
            out.append((yield ps.get()))

    env.process(consumer(env))
    env.run()
    assert out == [1, 2, 3, 4, 5]


def test_priority_store_waiter_gets_smallest_seen():
    env = Environment()
    ps = PriorityStore(env)
    got = []

    def consumer(env):
        got.append((yield ps.get()))
        got.append((yield ps.get()))

    def producer(env):
        yield env.timeout(1.0)
        ps.put(9)
        ps.put(2)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    # First put serves the blocked getter immediately (9 was the only
    # item at that instant); the second get drains the remaining 2.
    assert got == [9, 2]


def test_priority_store_try_api():
    env = Environment()
    ps = PriorityStore(env, capacity=2)
    assert ps.try_put(3)
    assert ps.try_put(1)
    assert not ps.try_put(2)
    ok, item = ps.try_get()
    assert ok and item == 1
    assert len(ps) == 1


def test_priority_store_tuples():
    env = Environment()
    ps = PriorityStore(env)
    ps.put((2, "low"))
    ps.put((1, "high"))
    ok, item = ps.try_get()
    assert ok and item == (1, "high")


# --------------------------------------------------------------- Container
def test_container_put_get():
    env = Environment()
    box = Container(env, capacity=100, init=10)
    log = []

    def getter(env):
        yield box.get(30)
        log.append(("got", env.now, box.level))

    def putter(env):
        yield env.timeout(2.0)
        yield box.put(25)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [("got", 2.0, 5.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    box = Container(env, capacity=10, init=8)
    log = []

    def putter(env):
        yield box.put(5)  # 8+5 > 10: blocks
        log.append(("put", env.now))

    def getter(env):
        yield env.timeout(3.0)
        yield box.get(4)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [("put", 3.0)]
    assert box.level == 9.0


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    box = Container(env, capacity=5)
    with pytest.raises(ValueError):
        box.put(0)
    with pytest.raises(ValueError):
        box.get(-1)
