"""Tests for the instrumentation layer (Trace, intervals, meters)."""

import numpy as np
import pytest

from repro.sim import (
    Environment,
    IntervalAccumulator,
    Trace,
    UtilizationMeter,
)
from repro.sim.monitor import merge_traces


# ------------------------------------------------------------------ Trace
def test_trace_records_time_and_payload():
    env = Environment()
    trace = Trace(env)

    def proc(env):
        trace.record("send", "gpu0", payload=64)
        yield env.timeout(3.0)
        trace.record("send", "gpu0", payload=128)
        trace.record("recv", "gpu1")

    env.process(proc(env))
    env.run()
    sends = trace.of_kind("send")
    assert [r.time for r in sends] == [0.0, 3.0]
    assert sends[1].payload == 128
    assert len(trace.of_kind("recv")) == 1


def test_trace_disabled_is_noop():
    env = Environment()
    trace = Trace(env, enabled=False)
    trace.record("x", "y")
    assert trace.records == []


def test_trace_times_array():
    env = Environment()
    trace = Trace(env)
    trace.record("a", "s")
    times = trace.times("a")
    assert isinstance(times, np.ndarray)
    assert list(times) == [0.0]
    assert len(trace.times("missing")) == 0


def test_trace_histogram_and_burstiness():
    env = Environment()
    trace = Trace(env)

    def proc(env):
        # Perfectly regular events -> low burstiness.
        for _ in range(20):
            trace.record("tick", "s")
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    edges, counts = trace.histogram("tick", n_bins=5)
    assert len(edges) == 6 and counts.sum() == 20
    assert trace.burstiness("tick", n_bins=5) < 0.3


def test_burstiness_of_burst():
    env = Environment()
    trace = Trace(env)

    def proc(env):
        yield env.timeout(90.0)
        for _ in range(30):
            trace.record("burst", "s")
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    # All events in one bin out of ten: highly bursty.
    assert trace.burstiness("burst", n_bins=10) > 1.5


def test_burstiness_empty_is_zero():
    env = Environment()
    trace = Trace(env)
    assert trace.burstiness("nothing") == 0.0


def test_merge_traces_ordered():
    env = Environment()
    a, b = Trace(env), Trace(env)

    def proc(env):
        a.record("x", "a")
        yield env.timeout(1.0)
        b.record("x", "b")
        yield env.timeout(1.0)
        a.record("x", "a")

    env.process(proc(env))
    env.run()
    merged = merge_traces([a, b])
    assert [r.source for r in merged] == ["a", "b", "a"]


# --------------------------------------------------- IntervalAccumulator
def test_interval_total_and_validation():
    acc = IntervalAccumulator()
    acc.add("compute", 0.0, 5.0)
    acc.add("compute", 10.0, 12.0)
    assert acc.total("compute") == 7.0
    assert acc.total("missing") == 0.0
    with pytest.raises(ValueError):
        acc.add("bad", 5.0, 1.0)


def test_interval_merged_overlapping():
    acc = IntervalAccumulator()
    acc.add("x", 0.0, 4.0)
    acc.add("x", 2.0, 6.0)
    acc.add("x", 10.0, 11.0)
    assert acc.merged("x") == [(0.0, 6.0), (10.0, 11.0)]


def test_interval_overlap_between_labels():
    acc = IntervalAccumulator()
    acc.add("compute", 0.0, 10.0)
    acc.add("comm", 5.0, 8.0)
    acc.add("comm", 9.0, 12.0)
    # Overlap = [5,8] + [9,10] = 4.0 of communication hidden under
    # compute — the latency-hiding metric.
    assert acc.overlap("compute", "comm") == 4.0
    assert acc.overlap("comm", "compute") == 4.0


def test_interval_overlap_disjoint():
    acc = IntervalAccumulator()
    acc.add("a", 0.0, 1.0)
    acc.add("b", 2.0, 3.0)
    assert acc.overlap("a", "b") == 0.0


# ------------------------------------------------------ UtilizationMeter
def test_meter_tracks_step_function():
    env = Environment()
    meter = UtilizationMeter(env)

    def proc(env):
        meter.set(4)
        yield env.timeout(10.0)
        meter.add(-2)
        yield env.timeout(10.0)
        meter.set(0)

    env.process(proc(env))
    env.run()
    assert meter.value == 0
    assert meter.value_at(5.0) == 4
    assert meter.value_at(15.0) == 2
    # Time-average over [0, 20]: (4*10 + 2*10) / 20 = 3.
    assert meter.time_average(20.0) == pytest.approx(3.0)


def test_meter_same_time_update_overwrites():
    env = Environment()
    meter = UtilizationMeter(env, initial=1.0)
    meter.set(5.0)
    meter.set(7.0)
    assert meter.value == 7.0
    assert meter.value_at(0.0) == 7.0


def test_meter_value_before_start():
    env = Environment(initial_time=10.0)
    meter = UtilizationMeter(env, initial=3.0)
    assert meter.value_at(0.0) == 3.0


def test_trace_ring_buffer_keeps_most_recent():
    env = Environment()
    trace = Trace(env, max_records=3)
    for i in range(7):
        trace.record("tick", "src", payload=i)
    assert len(trace.records) == 3
    assert [r.payload for r in trace.records] == [4, 5, 6]
    assert trace.total_recorded == 7
    assert trace.evicted == 4


def test_trace_ring_buffer_queries_still_work():
    env = Environment()
    trace = Trace(env, max_records=4)

    def proc(env):
        for i in range(6):
            trace.record("send", "gpu0", payload=i)
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    # Only the last 4 survive; queries see exactly those.
    assert [r.time for r in trace.of_kind("send")] == [2.0, 3.0, 4.0, 5.0]
    assert list(trace.times("send")) == [2.0, 3.0, 4.0, 5.0]
    _, counts = trace.histogram("send", n_bins=2)
    assert counts.sum() == 4


def test_trace_unbounded_default_never_evicts():
    env = Environment()
    trace = Trace(env)
    for i in range(100):
        trace.record("x", "y")
    assert trace.max_records is None
    assert isinstance(trace.records, list)
    assert trace.evicted == 0 and trace.total_recorded == 100


def test_trace_rejects_nonpositive_bound():
    env = Environment()
    with pytest.raises(ValueError):
        Trace(env, max_records=0)
    with pytest.raises(ValueError):
        Trace(env, max_records=-5)


def test_merge_traces_accepts_ring_buffers():
    env = Environment()
    bounded = Trace(env, max_records=2)
    unbounded = Trace(env)
    bounded.record("a", "s")
    bounded.record("a", "s")
    bounded.record("a", "s")  # evicts the first
    unbounded.record("b", "s")
    merged = merge_traces([bounded, unbounded])
    assert len(merged) == 3


def test_trace_eviction_warns_loudly_once():
    import warnings

    env = Environment()
    trace = Trace(env, max_records=2)
    trace.record("a", "s")
    trace.record("a", "s")
    with pytest.warns(RuntimeWarning, match="ring buffer full"):
        trace.record("a", "s")  # first eviction
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        trace.record("a", "s")  # further evictions stay quiet


def test_trace_within_bound_never_warns():
    import warnings

    env = Environment()
    trace = Trace(env, max_records=5)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for _ in range(5):
            trace.record("a", "s")
