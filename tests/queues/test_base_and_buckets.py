"""Additional coverage: queue base types, bucket draining, stats."""

import numpy as np
import pytest

from repro.queues import (
    AtosQueue,
    BucketedPriorityQueue,
    QueueStats,
    Ticket,
)


# ----------------------------------------------------------------- base
def test_ticket_is_immutable():
    ticket = Ticket(index=3, count=2)
    with pytest.raises(AttributeError):
        ticket.index = 5  # type: ignore[misc]


def test_queue_stats_defaults():
    stats = QueueStats()
    assert stats.pushes == stats.pops == 0
    assert stats.items_pushed == stats.items_popped == 0
    assert stats.full_failures == stats.empty_failures == 0


def test_ring_read_write_wraparound():
    q = AtosQueue(4)
    q.push([1, 2, 3])
    q.pop(3)
    q.push([4, 5, 6, 7])  # wraps the ring
    assert list(q.pop(4)) == [4, 5, 6, 7]


def test_atos_queue_dtype_respected():
    q = AtosQueue(8, dtype=np.float64)
    q.push([1.5, 2.5])
    out = q.pop(2)
    assert out.dtype == np.float64
    assert list(out) == [1.5, 2.5]


# ------------------------------------------------------------ pop_bucket
def test_pop_bucket_drains_exactly_one_band():
    pq = BucketedPriorityQueue(64, threshold_delta=1.0)
    pq.push(np.array([0, 0, 1, 2]), np.array([10, 11, 20, 30]))
    got = pq.pop_bucket(0)
    assert sorted(got.tolist()) == [10, 11]
    assert pq.readable == 2


def test_pop_bucket_raises_threshold():
    pq = BucketedPriorityQueue(64, threshold=0.5, threshold_delta=1.0)
    pq.push(np.array([3]), np.array([30]))
    got = pq.pop_bucket(3)
    assert got.tolist() == [30]
    assert pq.threshold >= 4.0
    assert pq.threshold_raises == 1


def test_pop_bucket_missing_key_empty():
    pq = BucketedPriorityQueue(64)
    assert len(pq.pop_bucket(7)) == 0


def test_pop_bucket_wide_delta_groups_priorities():
    pq = BucketedPriorityQueue(64, threshold_delta=10.0)
    pq.push(np.array([1.0, 9.0, 11.0]), np.array([1, 9, 11]))
    got = pq.pop_bucket(0)  # band [0, 10)
    assert sorted(got.tolist()) == [1, 9]


def test_lowest_nonempty_tracks_drain():
    pq = BucketedPriorityQueue(64, threshold_delta=1.0)
    pq.push(np.array([2, 5]), np.array([20, 50]))
    assert pq._lowest_nonempty() == 2
    pq.pop_bucket(2)
    assert pq._lowest_nonempty() == 5
    pq.pop_bucket(5)
    assert pq._lowest_nonempty() is None
