"""Property-based tests: the queue consistency protocol under arbitrary
interleavings of reserve / commit / pop (hypothesis-driven).

The invariant the paper's Listing 6 protocol exists to provide:
**a pop never observes uncommitted data, and once everything commits,
every pushed item is popped exactly once, in reservation order.**
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueFullError
from repro.queues import AtosQueue, BrokerQueue, CASQueue

QUEUES = [AtosQueue, BrokerQueue, CASQueue]


# Scripted interleavings: a list of actions.
#   ("reserve", k)  – open a reservation of k items
#   ("commit", i)   – commit the i-th still-open reservation
#   ("pop", k)      – pop up to k items
actions = st.lists(
    st.one_of(
        st.tuples(st.just("reserve"), st.integers(1, 5)),
        st.tuples(st.just("commit"), st.integers(0, 10)),
        st.tuples(st.just("pop"), st.integers(1, 8)),
    ),
    max_size=60,
)


def run_script(queue_cls, script):
    """Execute a script; returns (pushed_values, popped_values, queue)."""
    q = queue_cls(64)
    open_tickets = []  # (ticket, values)
    next_value = 0
    pushed, popped = [], []
    for action in script:
        if action[0] == "reserve":
            k = action[1]
            try:
                ticket = q.reserve(k)
            except QueueFullError:
                continue
            values = list(range(next_value, next_value + k))
            next_value += k
            open_tickets.append((ticket, values))
        elif action[0] == "commit":
            if not open_tickets:
                continue
            ticket, values = open_tickets.pop(
                action[1] % len(open_tickets)
            )
            q.commit(ticket, values)
            pushed.extend(values)
        else:
            popped.extend(q.pop(action[1]).tolist())
    return pushed, popped, q, open_tickets


@given(actions)
@settings(max_examples=120, deadline=None)
def test_property_no_uncommitted_data_ever_popped(script):
    for queue_cls in QUEUES:
        pushed, popped, q, _open = run_script(queue_cls, script)
        # Every popped value must have been committed at some point.
        assert set(popped) <= set(pushed)
        if hasattr(q, "check_invariants"):
            q.check_invariants()


@given(actions)
@settings(max_examples=120, deadline=None)
def test_property_no_duplicates_no_loss_after_drain(script):
    for queue_cls in QUEUES:
        pushed, popped, q, open_tickets = run_script(queue_cls, script)
        # Finish the run: commit all outstanding reservations, drain.
        for ticket, values in open_tickets:
            q.commit(ticket, values)
            pushed.extend(values)
        while True:
            got = q.pop(16)
            if len(got) == 0:
                break
            popped.extend(got.tolist())
        assert sorted(popped) == sorted(pushed)


@given(actions)
@settings(max_examples=100, deadline=None)
def test_property_pop_order_respects_reservation_order(script):
    # Values are assigned in reservation order, so FIFO-by-reservation
    # means the popped sequence must be strictly increasing.
    for queue_cls in QUEUES:
        _pushed, popped, _q, _open = run_script(queue_cls, script)
        assert popped == sorted(popped)
        assert len(set(popped)) == len(popped)


@given(st.lists(st.integers(1, 6), min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_property_reverse_commit_order_publishes_all_at_once(sizes):
    """Committing in exactly reverse order: nothing is poppable until the
    first reservation lands, then (for counter/CAS queues) everything is."""
    for queue_cls in (AtosQueue, CASQueue):
        q = queue_cls(256)
        tickets = [q.reserve(k) for k in sizes]
        value = 0
        payloads = []
        for t in tickets:
            payloads.append(list(range(value, value + t.count)))
            value += t.count
        for t, payload in list(zip(tickets, payloads))[::-1][:-1]:
            q.commit(t, payload)
            assert q.readable == 0  # gap at the front holds everything back
        q.commit(tickets[0], payloads[0])
        assert q.readable == sum(sizes)


@given(
    st.integers(1, 32),
    st.lists(st.integers(1, 10), min_size=1, max_size=30),
)
@settings(max_examples=80, deadline=None)
def test_property_capacity_never_exceeded(capacity, batch_sizes):
    for queue_cls in QUEUES:
        q = queue_cls(capacity)
        in_queue = 0
        for k in batch_sizes:
            try:
                q.push(list(range(k)))
                in_queue += k
            except QueueFullError:
                assert in_queue + k > capacity
            assert in_queue <= capacity
            if in_queue == capacity:
                in_queue -= len(q.pop(capacity))
