"""Property-based tests for the Fig-1 contention timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queues import QueueContentionModel

model = QueueContentionModel()
thread_counts = st.integers(32, 200000)


@given(thread_counts)
@settings(max_examples=60, deadline=None)
def test_property_all_costs_positive(n):
    for fn in (
        lambda: model.atos_push(n, "warp"),
        lambda: model.atos_pop(n, "cta"),
        lambda: model.atos_pop_push(n, "warp"),
        lambda: model.cas_push(n, "cta"),
        lambda: model.cas_pop_push(n, "warp"),
        lambda: model.broker_push(n),
        lambda: model.broker_pop(n),
        lambda: model.broker_pop_push(n),
    ):
        assert fn() > 0


@given(thread_counts, thread_counts)
@settings(max_examples=60, deadline=None)
def test_property_monotone_in_threads(a, b):
    lo, hi = min(a, b), max(a, b)
    for fn in (
        lambda n: model.atos_push(n, "warp"),
        lambda n: model.cas_push(n, "warp"),
        lambda n: model.broker_pop(n),
    ):
        assert fn(lo) <= fn(hi) + 1e-12


@given(st.integers(8192, 200000))
@settings(max_examples=60, deadline=None)
def test_property_ordering_invariant(n):
    """The paper's headline claim holds across Figure 1's plotted
    range (8k+ threads; below one CTA's worth of threads there is no
    contention for the queue designs to differ on)."""
    for ours in (model.atos_push(n, "warp"), model.atos_push(n, "cta")):
        assert ours <= model.broker_push(n) + 1e-12
        assert ours <= model.cas_push(n, "warp") + 1e-12
        assert ours <= model.cas_push(n, "cta") + 1e-12


@given(thread_counts, st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_property_linear_in_ops(n, ops):
    """Doubling per-thread ops doubles the variable cost exactly."""
    base = model.atos_push(n, "warp", ops=ops) - model.t_base
    double = model.atos_push(n, "warp", ops=2 * ops) - model.t_base
    assert double == pytest.approx(2 * base)


@given(thread_counts)
@settings(max_examples=40, deadline=None)
def test_property_wider_workers_cheaper(n):
    assert model.atos_push(n, "cta") <= model.atos_push(n, "warp") + 1e-12


def test_ops_validation():
    with pytest.raises(ValueError):
        model.atos_push(128, "warp", ops=0)
