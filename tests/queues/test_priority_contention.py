"""Tests for the bucketed priority queue and the Fig-1 contention model."""

import numpy as np
import pytest

from repro.queues import BucketedPriorityQueue, QueueContentionModel


# ------------------------------------------------------- priority queue
def test_priority_pop_lowest_bucket_first():
    pq = BucketedPriorityQueue(64, threshold=10, threshold_delta=1)
    pq.push(np.array([5, 2, 8, 2]), np.array([50, 20, 80, 21]))
    assert sorted(pq.pop(2).tolist()) == [20, 21]
    assert pq.pop(1).tolist() == [50]
    assert pq.pop(1).tolist() == [80]


def test_priority_threshold_raises_when_needed():
    pq = BucketedPriorityQueue(64, threshold=1, threshold_delta=1)
    pq.push(np.array([7]), np.array([70]))
    assert pq.pop(1).tolist() == [70]
    assert pq.threshold_raises >= 1
    assert pq.threshold >= 7


def test_priority_threshold_not_raised_for_low_items():
    pq = BucketedPriorityQueue(64, threshold=5, threshold_delta=1)
    pq.push(np.array([1, 2]), np.array([10, 20]))
    pq.pop(2)
    assert pq.threshold_raises == 0


def test_priority_mixed_push_pop_interleaving():
    pq = BucketedPriorityQueue(64, threshold_delta=2)
    pq.push(np.array([4, 0]), np.array([40, 0]))
    assert pq.pop(1).tolist() == [0]
    pq.push(np.array([1]), np.array([1]))
    assert pq.pop(1).tolist() == [1]  # lower-priority item jumps ahead
    assert pq.pop(1).tolist() == [40]


def test_priority_len_and_empty():
    pq = BucketedPriorityQueue(16)
    assert pq.empty and len(pq) == 0
    pq.push(np.array([1, 1, 2]), np.array([1, 2, 3]))
    assert len(pq) == 3 and not pq.empty


def test_priority_validation():
    with pytest.raises(ValueError):
        BucketedPriorityQueue(16, threshold_delta=0)
    pq = BucketedPriorityQueue(16)
    with pytest.raises(ValueError):
        pq.push(np.array([1, 2]), np.array([1]))
    with pytest.raises(ValueError):
        pq.pop(-1)


def test_priority_empty_push_is_noop():
    pq = BucketedPriorityQueue(16)
    pq.push(np.array([]), np.array([]))
    assert pq.empty


def test_priority_pop_empty_returns_nothing():
    pq = BucketedPriorityQueue(16)
    assert len(pq.pop(4)) == 0


def test_priority_bucketing_by_delta():
    # With delta=4, priorities 0-3 share a bucket: FIFO within it.
    pq = BucketedPriorityQueue(64, threshold_delta=4)
    pq.push(np.array([3]), np.array([30]))
    pq.push(np.array([1]), np.array([10]))
    assert pq.pop(1).tolist() == [30]  # same bucket, pushed first


# ------------------------------------------------------ contention model
@pytest.fixture
def model():
    return QueueContentionModel()


THREAD_RANGE = np.array([8192, 16384, 32768, 65536, 98304])


def test_fig1_atos_beats_cas_and_broker_everywhere(model):
    series = model.figure1_series(THREAD_RANGE)
    for plot in ("push", "pop", "pop_and_push"):
        ours_warp = series[plot]["our queue(warp)"]
        ours_cta = series[plot]["our queue(cta)"]
        for rival in ("Broker queue", "CAS queue(warp)", "CAS queue(cta)"):
            rival_times = series[plot][rival]
            assert np.all(ours_warp <= rival_times), (plot, rival)
            assert np.all(ours_cta <= rival_times), (plot, rival)


def test_fig1_cta_scales_better_than_warp(model):
    # Larger workers -> fewer serialized atomics.
    warp = model.atos_push(98304, "warp")
    cta = model.atos_push(98304, "cta")
    assert cta < warp


def test_fig1_times_grow_with_contention(model):
    for fn in (
        lambda n: model.atos_push(n, "warp"),
        lambda n: model.cas_push(n, "warp"),
        model.broker_push,
        model.broker_pop,
    ):
        times = [fn(int(n)) for n in THREAD_RANGE]
        assert times == sorted(times)
        assert times[-1] > times[0]


def test_fig1_broker_pop_much_worse_than_push(model):
    # Per-item flag polling dominates broker pops (paper Fig 1: pop
    # y-range is ~3x the push y-range).
    n = 98304
    assert model.broker_pop(n) > 1.5 * model.broker_push(n)


def test_fig1_cas_retry_multiplier_grows(model):
    low = model._cas_multiplier(1024, 32)
    high = model._cas_multiplier(98304, 32)
    assert high > low > 1.0


def test_fig1_magnitudes_match_paper_scale(model):
    # Paper Fig 1 y-axes: push tops out ~0.06 ms; pop ~0.2 ms at 1e5
    # threads.  Match within a factor of ~3.
    push_ms = model.atos_push(98304, "warp") * 1e-3
    broker_pop_ms = model.broker_pop(98304) * 1e-3
    assert 0.02 <= push_ms <= 0.18
    assert 0.05 <= broker_pop_ms <= 0.6


def test_contention_model_validation(model):
    with pytest.raises(ValueError):
        model.atos_push(0, "warp")
    with pytest.raises(KeyError):
        model.atos_push(128, "block")
