"""Functional tests for the three concurrent queue models.

The interesting behaviour is *publication*: which pushed items are
poppable after arbitrary interleavings of reserve/commit — that is
what the paper's counter protocol (Listing 6) guarantees.
"""

import numpy as np
import pytest

from repro.errors import QueueFullError
from repro.queues import AtosQueue, BrokerQueue, CASQueue

ALL_QUEUES = [AtosQueue, BrokerQueue, CASQueue]


@pytest.mark.parametrize("queue_cls", ALL_QUEUES)
class TestCommonBehaviour:
    def test_push_pop_round_trip(self, queue_cls):
        q = queue_cls(16)
        q.push([1, 2, 3])
        assert list(q.pop(3)) == [1, 2, 3]

    def test_fifo_across_pushes(self, queue_cls):
        q = queue_cls(16)
        q.push([1, 2])
        q.push([3])
        q.push([4, 5])
        assert list(q.pop(10)) == [1, 2, 3, 4, 5]

    def test_partial_pop(self, queue_cls):
        q = queue_cls(16)
        q.push([1, 2, 3, 4])
        assert list(q.pop(2)) == [1, 2]
        assert list(q.pop(2)) == [3, 4]

    def test_pop_empty_returns_nothing(self, queue_cls):
        q = queue_cls(4)
        assert len(q.pop(3)) == 0
        assert q.stats.empty_failures == 1

    def test_len_and_empty(self, queue_cls):
        q = queue_cls(8)
        assert q.empty and len(q) == 0
        q.push([7, 8])
        assert not q.empty and len(q) == 2

    def test_capacity_overflow_raises(self, queue_cls):
        q = queue_cls(4)
        q.push([1, 2, 3])
        with pytest.raises(QueueFullError):
            q.push([4, 5])
        assert q.stats.full_failures == 1

    def test_capacity_reclaimed_after_pop(self, queue_cls):
        q = queue_cls(4)
        q.push([1, 2, 3, 4])
        q.pop(4)
        q.push([5, 6, 7, 8])  # ring wraps; must not raise
        assert list(q.pop(4)) == [5, 6, 7, 8]

    def test_ring_wraparound_many_times(self, queue_cls):
        q = queue_cls(3)
        for i in range(30):
            q.push([i])
            assert list(q.pop(1)) == [i]
        q.check_invariants()

    def test_zero_size_operations(self, queue_cls):
        q = queue_cls(4)
        q.push([])
        assert len(q.pop(0)) == 0
        assert q.empty

    def test_negative_args_rejected(self, queue_cls):
        q = queue_cls(4)
        with pytest.raises(ValueError):
            q.reserve(-1)
        with pytest.raises(ValueError):
            q.pop(-1)

    def test_commit_wrong_size_rejected(self, queue_cls):
        q = queue_cls(8)
        ticket = q.reserve(3)
        with pytest.raises(ValueError):
            q.commit(ticket, [1, 2])

    def test_invalid_capacity(self, queue_cls):
        with pytest.raises(ValueError):
            queue_cls(0)

    def test_stats_counters(self, queue_cls):
        q = queue_cls(16)
        q.push([1, 2, 3])
        q.pop(2)
        assert q.stats.items_pushed == 3
        assert q.stats.items_popped == 2
        assert q.stats.pushes == 1
        assert q.stats.pops == 1

    def test_uncommitted_reservation_not_poppable(self, queue_cls):
        q = queue_cls(8)
        q.reserve(2)  # never committed
        q.push([9])  # hmm: reserved after the gap
        # Nothing before the gap is committed, so FIFO queues must not
        # expose item 9 ahead of the uncommitted slots.
        assert len(q.pop(4)) == 0

    def test_gap_fill_publishes_everything(self, queue_cls):
        q = queue_cls(8)
        t1 = q.reserve(2)
        t2 = q.reserve(1)
        q.commit(t2, [30])  # out-of-order commit
        assert len(q) == 0  # gap before it: not yet poppable
        q.commit(t1, [10, 20])  # gap filled
        assert list(q.pop(5)) == [10, 20, 30]


# ------------------------------------------------------- Atos specifics
def test_atos_counters_track_protocol():
    q = AtosQueue(16)
    t1 = q.reserve(4)
    assert (q.end_alloc, q.end, q.end_max, q.end_count) == (4, 0, 0, 0)
    q.commit(t1, [1, 2, 3, 4])
    assert (q.end_alloc, q.end, q.end_max, q.end_count) == (4, 4, 4, 4)
    q.pop(2)
    assert q.start == 2
    q.check_invariants()


def test_atos_out_of_order_commit_counter_states():
    q = AtosQueue(16)
    t1 = q.reserve(2)
    t2 = q.reserve(3)
    q.commit(t2, [5, 6, 7])
    # end_count (3) != end_max (5): publication frontier held back.
    assert q.end == 0 and q.end_max == 5 and q.end_count == 3
    q.commit(t1, [1, 2])
    assert q.end == 5 and q.end_count == 5
    assert list(q.pop(5)) == [1, 2, 5, 6, 7]


def test_atos_pending_property():
    q = AtosQueue(8)
    t = q.reserve(3)
    assert q.pending == 3 and q.readable == 0
    q.commit(t, [1, 2, 3])
    assert q.pending == 0 and q.readable == 3


# ------------------------------------------------------ Broker specifics
def test_broker_failed_poll_counted():
    q = BrokerQueue(8)
    t1 = q.reserve(1)
    t2 = q.reserve(1)
    q.commit(t2, [2])
    assert len(q.pop(2)) == 0  # head flag unset -> failed poll
    assert q.failed_polls == 1
    q.commit(t1, [1])
    assert list(q.pop(2)) == [1, 2]


def test_broker_flags_cleared_after_pop():
    q = BrokerQueue(4)
    q.push([1, 2])
    q.pop(2)
    assert not q.flags.any()
    q.check_invariants()


# --------------------------------------------------------- CAS specifics
def test_cas_failures_counted_for_out_of_order_commits():
    q = CASQueue(16)
    t1 = q.reserve(2)
    t2 = q.reserve(2)
    t3 = q.reserve(2)
    q.commit(t3, [5, 6])
    q.commit(t2, [3, 4])
    assert q.cas_failures == 2  # both spun behind t1
    q.commit(t1, [1, 2])
    assert q.end == 6
    assert list(q.pop(6)) == [1, 2, 3, 4, 5, 6]


def test_cas_in_order_commits_never_fail():
    q = CASQueue(16)
    for i in range(5):
        q.push([i])
    assert q.cas_failures == 0
