"""Batch push API equivalence: ``push_batch`` vs a per-payload loop.

``ConcurrentQueue.push_batch`` exists so the hot data path can cross
the queue protocol once per payload run instead of once per payload.
Its contract is *observational equivalence*: for any queue model and
any payload run, a reader must not be able to tell whether the run
entered through one wide reserve/commit or through N narrow ones —
same poppable contents in the same order, same gap exposure around
open reservations, same ``QueueFullError`` point, same item counters.
Only the operation counters (``pushes``) may differ, recording one
wide operation.

These are twin-queue tests: every scenario is applied to two
identically prepared queues, one per push style, and every observable
is compared.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueFullError
from repro.queues import AtosQueue, BrokerQueue, CASQueue

QUEUES = [AtosQueue, BrokerQueue, CASQueue]


@st.composite
def scenarios(draw):
    capacity = draw(st.integers(4, 32))
    pre_lens = draw(st.lists(st.integers(0, 3), max_size=4))
    pre_pop = draw(st.integers(0, 8))
    open_reservation = draw(st.integers(0, 4))
    batch_lens = draw(st.lists(st.integers(0, 6), max_size=8))
    return capacity, pre_lens, pre_pop, open_reservation, batch_lens


def _prepare(queue_cls, capacity, pre_lens, pre_pop, open_reservation):
    """Build one queue: some committed traffic, then an open gap."""
    queue = queue_cls(capacity)
    value = 0
    for length in pre_lens:
        items = np.arange(value, value + length)
        value += length
        try:
            queue.push(items)
        except QueueFullError:
            pass
    queue.pop(pre_pop)
    ticket = None
    if open_reservation:
        try:
            ticket = queue.reserve(open_reservation)
        except QueueFullError:
            ticket = None
    return queue, ticket, value


def _observe(queue):
    return (queue.readable, queue.pending, queue.free_slots)


def _drain(queue):
    out = []
    while True:
        got = queue.pop(3)
        if not len(got):
            return out
        out.extend(got.tolist())


@given(scenarios())
@settings(max_examples=150, deadline=None)
def test_push_batch_equivalent_to_push_loop(scenario):
    capacity, pre_lens, pre_pop, open_reservation, batch_lens = scenario
    base = 1000
    payloads = []
    for length in batch_lens:
        payloads.append(np.arange(base, base + length))
        base += length

    for queue_cls in QUEUES:
        wide, wide_ticket, _ = _prepare(
            queue_cls, capacity, pre_lens, pre_pop, open_reservation
        )
        narrow, narrow_ticket, _ = _prepare(
            queue_cls, capacity, pre_lens, pre_pop, open_reservation
        )
        assert _observe(wide) == _observe(narrow)

        wide_raised = narrow_raised = False
        try:
            wide.push_batch(payloads)
        except QueueFullError:
            wide_raised = True
        try:
            for payload in payloads:
                narrow.push(payload)
        except QueueFullError:
            narrow_raised = True

        # Same failure point, same visible state around the open gap.
        assert wide_raised == narrow_raised
        assert _observe(wide) == _observe(narrow)
        assert wide.stats.items_pushed == narrow.stats.items_pushed
        assert wide.stats.full_failures == narrow.stats.full_failures

        # Close the gap (commit the open reservation on both queues
        # with identical items) and compare the full drain order.
        if wide_ticket is not None:
            gap_items = np.arange(-open_reservation, 0)
            wide.commit(wide_ticket, gap_items)
            narrow.commit(narrow_ticket, gap_items)
        assert _observe(wide) == _observe(narrow)
        assert _drain(wide) == _drain(narrow)
        if hasattr(wide, "check_invariants"):
            wide.check_invariants()
            narrow.check_invariants()


@given(st.lists(st.integers(0, 5), max_size=6))
@settings(max_examples=60, deadline=None)
def test_push_batch_spanning_ticket(batch_lens):
    """The returned ticket spans exactly the committed payloads."""
    payloads = [np.arange(n) for n in batch_lens]
    total = sum(batch_lens)
    for queue_cls in QUEUES:
        queue = queue_cls(max(total, 1))
        ticket = queue.push_batch(payloads)
        if not payloads:
            assert ticket is None
        else:
            assert ticket.count == total
            assert queue.readable == total


def test_push_batch_commits_prefix_then_raises():
    """The longest fitting prefix lands before QueueFullError."""
    for queue_cls in QUEUES:
        queue = queue_cls(8)
        payloads = [
            np.array([1, 2, 3]),
            np.array([4, 5, 6]),
            np.array([7, 8, 9]),  # cannot fit: 9 > 8 slots
        ]
        try:
            queue.push_batch(payloads)
            raise AssertionError("expected QueueFullError")
        except QueueFullError:
            pass
        assert queue.pop(16).tolist() == [1, 2, 3, 4, 5, 6]

        # A per-payload loop raises at the identical point.
        loop = queue_cls(8)
        seen = []
        try:
            for payload in payloads:
                loop.push(payload)
                seen.append(payload)
        except QueueFullError:
            pass
        assert loop.pop(16).tolist() == [1, 2, 3, 4, 5, 6]


def test_push_batch_counts_one_wide_operation():
    """Protocol-crossing reduction is visible in the stats."""
    queue = AtosQueue(64)
    queue.push_batch([np.arange(3), np.arange(4), np.arange(5)])
    assert queue.stats.pushes == 1
    assert queue.stats.items_pushed == 12
