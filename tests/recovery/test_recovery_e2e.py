"""End-to-end fail-stop recovery: crash, roll back, re-home, validate.

The tentpole invariant: every run with a fail-stop rank terminates,
drains its in-flight ledger, and produces output identical to the
fault-free serial reference — recovery is invisible in the result.
Plus the two determinism pins: identical checkpoint/result digests
across repeated runs (serial and pooled), and trace-identical execution
when no crash is scheduled.
"""

import pytest

from repro.config import daisy
from repro.errors import ConfigurationError
from repro.faults import CrashEvent, FaultPlan
from repro.harness.chaos import (
    CrashSpec,
    _build_app,
    _config,
    crash_grid,
    run_crash_cell,
    verify_recovery_inert,
)
from repro.recovery import RecoveryPolicy
from repro.runtime import AtosExecutor


# ------------------------------------------------------------ the grid
CELLS = [
    # Early crashes roll back to the epoch-0 bootstrap checkpoint;
    # later ones replay from a periodic epoch.
    CrashSpec(app="bfs", variant="standard-persistent",
              crash_pe=1, crash_at=15.0),
    CrashSpec(app="bfs", variant="priority-discrete",
              crash_pe=2, crash_at=30.0),
    CrashSpec(app="pagerank", variant="standard-persistent",
              crash_pe=1, crash_at=80.0),
    CrashSpec(app="pagerank", variant="priority-discrete",
              crash_pe=3, crash_at=180.0),
]


@pytest.mark.parametrize("spec", CELLS, ids=lambda s: s.label())
def test_crashed_run_recovers_and_validates(spec):
    cell = run_crash_cell(spec)
    assert cell.ok, cell.error
    assert cell.recovered == 1
    assert cell.faults["recovery_checkpoints_taken"] >= 2
    assert cell.faults["recovery_replay_messages"] >= 1
    assert cell.result_digest
    assert len(cell.checkpoint_digests) >= 2


def test_double_crash_recovers_twice():
    spec = CrashSpec(app="pagerank", variant="standard-persistent",
                     crash_pe=1, crash_at=80.0)
    app, validate = _build_app(spec)
    plan = FaultPlan(seed=0, crashes=(
        CrashEvent(pe=1, at=80.0), CrashEvent(pe=3, at=200.0),
    ))
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, plan, None, spec.policy())
    )
    _makespan, counters = executor.run()
    assert sorted(executor.recovery.dead) == [1, 3]
    assert counters["recovery_ranks_recovered"] == 2
    assert executor.ledger.leased == 0
    assert validate(app.result())
    # Degraded mode: routes to the dead ranks are down.
    down = executor.fabric.topology.down_ranks
    assert down == frozenset({1, 3})


def test_crash_with_message_faults_still_validates():
    spec = CrashSpec(app="bfs", variant="standard-persistent",
                     crash_pe=2, crash_at=25.0)
    app, validate = _build_app(spec)
    plan = FaultPlan(
        seed=0, drop_rate=0.05, duplicate_rate=0.02, delay_rate=0.05,
        crashes=(CrashEvent(pe=2, at=25.0),),
    )
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, plan, None, spec.policy())
    )
    executor.run()
    assert executor.ledger.leased == 0
    assert validate(app.result())


def test_crash_requires_recovery_capable_app():
    spec = CrashSpec(app="bfs", variant="standard-persistent",
                     crash_pe=1, crash_at=15.0)
    app, _ = _build_app(spec)
    app.supports_recovery = False
    with pytest.raises(ConfigurationError, match="checkpoint/restore"):
        AtosExecutor(
            daisy(spec.n_gpus), app,
            _config(spec, spec.plan(), None, spec.policy()),
        )


@pytest.mark.parametrize("kwargs", [
    {"checkpoint_interval": 0.0},
    {"detect_interval": -1.0},
    {"drain_poll": 0.0},
])
def test_recovery_policy_validation(kwargs):
    with pytest.raises(ConfigurationError):
        RecoveryPolicy(**kwargs)


def test_checkpoints_can_persist_to_store(tmp_path):
    from repro.recovery import CheckpointStore

    spec = CrashSpec(app="bfs", variant="standard-persistent",
                     crash_pe=1, crash_at=15.0)
    app, _ = _build_app(spec)
    policy = RecoveryPolicy(
        checkpoint_interval=spec.checkpoint_interval,
        detect_interval=spec.detect_interval,
        drain_poll=spec.drain_poll,
        store_dir=str(tmp_path),
    )
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, spec.plan(), None, policy)
    )
    executor.run()
    digests = executor.recovery.checkpoint_digests
    store = CheckpointStore(tmp_path)
    assert sorted(set(digests)) == store.keys()
    epoch0 = store.get(digests[0])
    assert epoch0 is not None and epoch0.epoch == 0


# -------------------------------------------------------- determinism
def test_crash_runs_are_digest_deterministic():
    spec = CrashSpec(app="bfs", variant="standard-persistent",
                     crash_pe=1, crash_at=15.0)
    first, second = run_crash_cell(spec), run_crash_cell(spec)
    assert first.ok and second.ok
    assert first.result_digest == second.result_digest
    assert first.checkpoint_digests == second.checkpoint_digests


def test_serial_and_pooled_crash_grids_agree():
    kwargs = dict(
        crash_times={"bfs": (15.0,), "pagerank": (80.0,)},
        variants=("standard-persistent",),
    )
    serial = crash_grid(**kwargs)
    pooled = crash_grid(jobs=2, **kwargs)
    assert [c.ok for c in serial] == [c.ok for c in pooled] == [True] * 2
    for a, b in zip(serial, pooled):
        assert a.result_digest == b.result_digest
        assert a.checkpoint_digests == b.checkpoint_digests


def test_zero_crash_plan_is_trace_identical():
    assert verify_recovery_inert(apps=("bfs",))
