"""Checkpoint objects: content digests and the content-addressed store."""

import numpy as np
import pytest

from repro.recovery import Checkpoint, CheckpointStore
from repro.runtime import TrackerSnapshot


def _checkpoint(epoch=0, depth_fill=7, tasks=(3, 9)):
    tasks = np.asarray(tasks, dtype=np.int64)
    return Checkpoint(
        epoch=epoch,
        sim_time=12.5,
        app_state={"depth": np.full(16, depth_fill, dtype=np.int64)},
        frontier=(
            (tasks, None),
            (np.empty(0, dtype=np.int64), None),
        ),
        tracker=TrackerSnapshot(outstanding=len(tasks), total_added=40),
    )


def test_properties_count_tasks_and_bytes():
    ckpt = _checkpoint()
    assert ckpt.total_tasks == 2
    assert ckpt.nbytes == 16 * 8 + 2 * 8


def test_digest_is_deterministic_and_content_sensitive():
    assert _checkpoint().digest() == _checkpoint().digest()
    assert _checkpoint().digest() != _checkpoint(epoch=1).digest()
    assert _checkpoint().digest() != _checkpoint(depth_fill=8).digest()
    assert _checkpoint().digest() != _checkpoint(tasks=(3, 10)).digest()


def test_digest_distinguishes_fifo_from_priorities():
    fifo = _checkpoint()
    tasks = np.array([3, 9], dtype=np.int64)
    prio = Checkpoint(
        epoch=0,
        sim_time=12.5,
        app_state=dict(fifo.app_state),
        frontier=(
            (tasks, np.zeros(2)),
            (np.empty(0, dtype=np.int64), None),
        ),
        tracker=fifo.tracker,
    )
    assert fifo.digest() != prio.digest()


def test_store_roundtrip_is_content_addressed(tmp_path):
    store = CheckpointStore(tmp_path)
    ckpt = _checkpoint()
    key = store.put(ckpt)
    assert key == ckpt.digest()
    assert store.keys() == [key]
    loaded = store.get(key)
    assert loaded is not None
    assert loaded.epoch == ckpt.epoch
    assert loaded.digest() == key
    np.testing.assert_array_equal(
        loaded.app_state["depth"], ckpt.app_state["depth"]
    )
    np.testing.assert_array_equal(loaded.frontier[0][0], ckpt.frontier[0][0])
    assert store.get("0" * 64) is None  # miss


def test_store_holds_every_epoch(tmp_path):
    store = CheckpointStore(tmp_path)
    keys = {store.put(_checkpoint(epoch=e)) for e in range(3)}
    assert len(keys) == 3
    assert sorted(keys) == store.keys()
