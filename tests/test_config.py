"""Tests for machine configs and cost-model constants."""

import pytest

from repro.config import (
    GB_PER_S,
    CostModel,
    GPUSpec,
    LinkSpec,
    MachineConfig,
    V100_16GB,
    V100_32GB,
    daisy,
    summit_ib,
    summit_node,
)
from repro.errors import ConfigurationError


def test_gb_per_s_conversion():
    # 1 GB/s == 1000 bytes per microsecond.
    assert GB_PER_S == 1000.0
    assert V100_32GB.memory_bandwidth == 900.0 * 1000.0


def test_v100_variants():
    assert V100_32GB.memory_capacity == 32 * 1024**3
    assert V100_16GB.memory_capacity == 16 * 1024**3
    assert V100_16GB.n_sms == V100_32GB.n_sms == 80
    assert V100_32GB.resident_threads() == 80 * 2048


def test_machine_validation_rejects_bad_links():
    gpu = V100_32GB
    with pytest.raises(ConfigurationError):
        MachineConfig(
            name="bad",
            gpu=gpu,
            n_gpus=0,
            links={},
        )
    link = LinkSpec(kind="nvlink", bandwidth=1.0, latency=1.0)
    with pytest.raises(ConfigurationError):
        MachineConfig(name="bad", gpu=gpu, n_gpus=2,
                      links={(0, 5): link})
    with pytest.raises(ConfigurationError):
        MachineConfig(name="bad", gpu=gpu, n_gpus=2,
                      links={(1, 1): link})


def test_daisy_full_connectivity():
    machine = daisy(4)
    for i in range(4):
        for j in range(4):
            if i != j:
                assert machine.link(i, j).kind == "nvlink"


def test_daisy_bandwidth_symmetry():
    machine = daisy(4)
    for (i, j), spec in machine.links.items():
        assert machine.link(j, i).bandwidth == spec.bandwidth


def test_summit_node_socket_structure():
    machine = summit_node(6)
    # Same socket: 50 GB/s.
    assert machine.link(0, 2).bandwidth == 50 * GB_PER_S
    assert machine.link(3, 5).bandwidth == 50 * GB_PER_S
    # Cross socket: slower, higher latency.
    assert machine.link(2, 3).bandwidth < 50 * GB_PER_S
    assert machine.link(2, 3).latency > machine.link(0, 1).latency


def test_summit_ib_is_inter_node():
    machine = summit_ib(8)
    assert machine.inter_node
    assert not daisy(4).inter_node
    assert not summit_node(6).inter_node


def test_subset_preserves_costs():
    machine = summit_ib(8)
    sub = machine.subset(3)
    assert sub.cost is machine.cost or sub.cost == machine.cost
    assert sub.inter_node
    assert sub.n_gpus == 3


def test_cost_model_defaults_sane():
    cost = CostModel()
    # The paper's core premise: the GPU control path is much cheaper
    # than the CPU one.
    assert cost.gpu_control_path_latency < cost.cpu_control_path_latency / 5
    # Kernel launch overhead is microseconds-scale.
    assert 1.0 <= cost.kernel_launch_overhead <= 50.0
    # IB per-message costs exceed NVLink-style latencies.
    assert cost.ib_base_latency + cost.ib_message_overhead > 5.0


def test_gpu_spec_is_frozen():
    with pytest.raises(AttributeError):
        V100_32GB.n_sms = 100  # type: ignore[misc]


def test_shared_aggregation_defaults():
    # Satellite of the telemetry PR: the BATCH_SIZE / WAIT_TIME values
    # every layer used to duplicate now live in one place.
    from repro.config import (
        BFS_WAIT_TIME,
        DEFAULT_BATCH_SIZE,
        DEFAULT_WAIT_TIME,
        PAGERANK_WAIT_TIME,
        wait_time_for,
    )

    assert DEFAULT_BATCH_SIZE == 1 << 20  # paper: 1 MiB IB batches
    assert wait_time_for("bfs") == BFS_WAIT_TIME == 4
    assert wait_time_for("pagerank") == PAGERANK_WAIT_TIME == 32
    assert wait_time_for("no-such-app") == DEFAULT_WAIT_TIME


def test_executor_defaults_track_config():
    from repro.config import DEFAULT_BATCH_SIZE, DEFAULT_WAIT_TIME
    from repro.runtime import AtosConfig

    config = AtosConfig()
    assert config.batch_size == DEFAULT_BATCH_SIZE
    assert config.wait_time == DEFAULT_WAIT_TIME


def test_validate_tuning_central_bounds():
    # Satellite of the tune PR: overlay-level knob bounds live in ONE
    # place (repro.config.validate_tuning) instead of being duplicated
    # per layer.
    from repro.config import validate_tuning
    from repro.errors import ConfigError

    validate_tuning()  # all-None is fine
    validate_tuning(batch_size=1, wait_time=0, fetch_size=1,
                    engine_queue="calendar", partitions=1)
    for bad in (
        dict(batch_size=0),
        dict(batch_size=2.5),
        dict(wait_time=-1),
        dict(fetch_size=0),
        dict(engine_queue="splay"),
        dict(partitions=0),
        dict(pdes_driver="mpi"),
    ):
        with pytest.raises(ConfigError):
            validate_tuning(**bad)


def test_config_overlay_validates_and_serializes():
    from repro.config import ConfigOverlay
    from repro.errors import ConfigError

    overlay = ConfigOverlay(batch_size=1 << 18, wait_time=8)
    assert overlay  # truthy when any knob is set
    assert not ConfigOverlay()  # empty overlay is falsy
    assert overlay.as_dict() == {"batch_size": 1 << 18, "wait_time": 8}
    assert overlay.executor_overrides() == {
        "batch_size": 1 << 18, "wait_time": 8,
    }
    assert ConfigOverlay.from_dict(overlay.as_dict()) == overlay
    with pytest.raises(ConfigError):
        ConfigOverlay(batch_size=0)
    with pytest.raises(ConfigError):
        ConfigOverlay(pdes_driver="pooled")  # needs partitions >= 2


def test_engine_queue_names_are_canonical_in_config():
    # repro.sim.equeue re-exports the tuple; repro.config owns it.
    from repro.config import ENGINE_QUEUES
    from repro.sim import equeue

    assert ENGINE_QUEUES == ("heap", "calendar")
    assert equeue.ENGINE_QUEUES is ENGINE_QUEUES
