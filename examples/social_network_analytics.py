#!/usr/bin/env python
"""Social-network analytics: PageRank on a scale-free graph, Atos vs
the BSP baseline.

The scenario the paper's introduction motivates: ranking influence in
a social graph is bandwidth-bound and irregular — exactly where
PGAS-style asynchronous execution pays off.  This example ranks a
LiveJournal-like graph on 1-4 simulated GPUs with both engines and
reports the top accounts and the speedup.

Run:  python examples/social_network_analytics.py
"""

import numpy as np

from repro.config import daisy
from repro.graph import load, bfs_grow_partition
from repro.frameworks import AtosDriver, GunrockLikeDriver


def main() -> None:
    dataset = "soc-livejournal1"
    graph = load(dataset)
    print(f"{dataset}: {graph.n_vertices} vertices, {graph.n_edges} edges")

    atos = AtosDriver()  # standard queue + persistent kernel
    gunrock = GunrockLikeDriver()

    print(f"\n{'GPUs':>4} {'Gunrock (ms)':>14} {'Atos (ms)':>12} "
          f"{'speedup':>9}")
    rank = None
    for n_gpus in (1, 2, 4):
        partition = bfs_grow_partition(graph, n_gpus, seed=0)
        machine = daisy(n_gpus)
        bsp = gunrock.run_pagerank(graph, partition, machine,
                                   dataset=dataset)
        asy = atos.run_pagerank(graph, partition, machine, dataset=dataset)
        rank = np.asarray(asy.output)
        print(f"{n_gpus:>4} {bsp.time_ms:>14.2f} {asy.time_ms:>12.2f} "
              f"{bsp.time_ms / asy.time_ms:>8.2f}x")

    assert rank is not None
    top = np.argsort(rank)[::-1][:5]
    degrees = np.asarray(graph.out_degree())
    print("\ntop-5 ranked vertices (rank, out-degree):")
    for v in top:
        print(f"  vertex {v:>6}: rank {rank[v]:.4f}, degree {degrees[v]}")

    # Sanity: high rank should correlate with high connectivity.
    assert degrees[top].mean() > degrees.mean()
    print("\nOK: async PageRank beats the BSP engine and ranks hubs first")


if __name__ == "__main__":
    main()
