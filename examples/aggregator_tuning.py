#!/usr/bin/env python
"""Tuning the communication aggregator on an InfiniBand cluster.

On IB, small one-sided messages waste the NIC (paper Fig 4), so Atos
batches them.  The two knobs: BATCH_SIZE (flush on accumulated bytes)
and WAIT_TIME (flush on aggregator polls).  The paper's settings are
eager WAIT_TIME=4 for latency-bound BFS and WAIT_TIME=32 + 1 MiB for
bandwidth-bound PageRank; this example sweeps both knobs on both
applications and prints the resulting latency/throughput trade-off.

Run:  python examples/aggregator_tuning.py
"""

from repro.config import summit_ib
from repro.graph import bfs_source, load, bfs_grow_partition
from repro.apps import AtosBFS, AtosPageRank
from repro.runtime import AtosConfig, AtosExecutor


def run_bfs(machine, graph, partition, source, wait_time):
    app = AtosBFS(graph, partition, source)
    config = AtosConfig(fetch_size=1, wait_time=wait_time)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return makespan / 1000, counters


def run_pr(machine, graph, partition, wait_time):
    app = AtosPageRank(graph, partition, epsilon=1e-4)
    config = AtosConfig(fetch_size=8, wait_time=wait_time)
    makespan, counters = AtosExecutor(machine, app, config).run()
    return makespan / 1000, counters


def main() -> None:
    dataset = "soc-livejournal1"
    graph = load(dataset)
    source = bfs_source(dataset)
    machine = summit_ib(4)
    partition = bfs_grow_partition(graph, 4, seed=0)
    print(f"{dataset} on 4 IB-connected GPUs\n")

    print("BFS (latency-bound): eager flushing wins")
    print(f"{'WAIT_TIME':>10} {'time (ms)':>10} {'wire msgs':>10}")
    bfs_times = {}
    for wait_time in (1, 4, 16, 64):
        ms, counters = run_bfs(machine, graph, partition, source, wait_time)
        bfs_times[wait_time] = ms
        print(f"{wait_time:>10} {ms:>10.3f} "
              f"{int(counters['fabric_messages']):>10}")

    print("\nPageRank (bandwidth-bound): batching wins")
    print(f"{'WAIT_TIME':>10} {'time (ms)':>10} {'wire msgs':>10}")
    pr_times = {}
    for wait_time in (1, 4, 32, 64):
        ms, counters = run_pr(machine, graph, partition, wait_time)
        pr_times[wait_time] = ms
        print(f"{wait_time:>10} {ms:>10.3f} "
              f"{int(counters['fabric_messages']):>10}")

    # The paper's qualitative conclusion: the best BFS setting is more
    # eager than the best PageRank setting.
    best_bfs = min(bfs_times, key=bfs_times.get)
    best_pr = min(pr_times, key=pr_times.get)
    print(f"\nbest WAIT_TIME: BFS={best_bfs}, PageRank={best_pr}")
    assert best_bfs <= best_pr
    print("OK: latency-bound BFS prefers eager sends; "
          "PageRank tolerates batching")


if __name__ == "__main__":
    main()
