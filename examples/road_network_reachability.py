#!/usr/bin/env python
"""Road-network reachability: BFS on a mesh-like graph across engines.

High-diameter road networks are the worst case for bulk-synchronous
GPU frameworks: thousands of near-empty frontiers mean the run is all
kernel-launch and synchronization overhead.  This example reproduces
the paper's headline mesh result — the persistent-kernel Atos
configuration dominates, the discrete-kernel configuration pays per
level, and the BSP engine pays the most — and shows the latency
breakdown that explains it.

Run:  python examples/road_network_reachability.py
"""

import numpy as np

from repro.config import daisy
from repro.graph import bfs_source, load, bfs_grow_partition
from repro.gpu.kernel import KernelStrategy
from repro.frameworks import AtosDriver, GrouteLikeDriver, GunrockLikeDriver


def main() -> None:
    dataset = "road-usa"
    graph = load(dataset)
    source = bfs_source(dataset)
    partition = bfs_grow_partition(graph, 4, seed=0)
    machine = daisy(4)
    print(f"{dataset}: {graph.n_vertices} vertices, {graph.n_edges} edges")

    drivers = [
        GunrockLikeDriver(),
        GrouteLikeDriver(),
        AtosDriver(kernel=KernelStrategy.DISCRETE,
                   variant_name="atos-discrete"),
        AtosDriver(kernel=KernelStrategy.PERSISTENT,
                   variant_name="atos-persistent"),
    ]
    results = {}
    for driver in drivers:
        results[driver.name] = driver.run_bfs(
            graph, partition, source, machine, dataset=dataset
        )

    depth = np.asarray(results["atos-persistent"].output)
    reached = depth[depth < np.iinfo(np.int32).max]
    print(f"BFS depth of farthest reachable intersection: {reached.max()}")

    baseline = results["gunrock"].time_ms
    print(f"\n{'engine':<18} {'time (ms)':>10} {'vs gunrock':>11}")
    for name, result in sorted(results.items(), key=lambda kv: -kv[1].time_ms):
        print(f"{name:<18} {result.time_ms:>10.2f} "
              f"{baseline / result.time_ms:>10.2f}x")

    levels = results["gunrock"].counters["levels"]
    launch_cost_ms = levels * (
        machine.cost.kernel_launch_overhead + machine.cost.cpu_sync_overhead
    ) / 1000
    print(f"\nwhy: {int(levels)} BSP levels x "
          f"(launch + sync) = {launch_cost_ms:.2f} ms of pure overhead "
          f"that the persistent kernel never pays")
    assert results["atos-persistent"].time_ms < results["groute"].time_ms
    assert results["groute"].time_ms < results["gunrock"].time_ms
    print("OK: atos-persistent < groute < gunrock on mesh BFS")


if __name__ == "__main__":
    main()
