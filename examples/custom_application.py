#!/usr/bin/env python
"""Writing a new application on the Atos runtime: connected components.

The runtime's application contract is three methods — ``setup`` (seed
the distributed queue), ``process`` (the worker task function), and
``handle_remote`` (apply arriving one-sided updates) — and the
runtime supplies scheduling, one-sided messaging, aggregation, and
termination.  This example runs the bundled
:class:`~repro.apps.connected_components.AtosConnectedComponents`
(min-label propagation, an extension beyond the paper's two apps) and
cross-checks it against networkx.

Run:  python examples/custom_application.py
"""

import networkx as nx
import numpy as np

from repro.config import daisy
from repro.graph import grid_mesh, random_partition
from repro.apps.connected_components import (
    AtosConnectedComponents,
    reference_components,
)
from repro.runtime import AtosConfig, AtosExecutor


def main() -> None:
    # A road-like mesh with dropped edges: several components.
    graph = grid_mesh(40, 40, drop_fraction=0.35, shortcut_fraction=0.0,
                      seed=3)
    partition = random_partition(graph, 4, seed=0)

    app = AtosConnectedComponents(graph, partition)
    makespan, counters = AtosExecutor(daisy(4), app, AtosConfig()).run()
    labels = app.result()

    n_components = len(np.unique(labels))
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")
    print(f"components found: {n_components}")
    print(f"simulated runtime: {makespan / 1000:.3f} ms")
    print(f"label propagations: {int(counters['vertices_visited'])}")

    # Validate against the serial oracle and networkx.
    assert np.array_equal(labels, reference_components(graph))
    src, dst = graph.to_edges()
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.n_vertices))
    nx_graph.add_edges_from(zip(src.tolist(), dst.tolist()))
    nx_count = nx.number_connected_components(nx_graph)
    assert n_components == nx_count, (n_components, nx_count)
    print(f"OK: matches networkx ({nx_count} components)")


if __name__ == "__main__":
    main()
