#!/usr/bin/env python
"""Quickstart: run asynchronous BFS on a simulated 4-GPU NVLink machine.

This walks the core public API end to end:

1. build a graph (``repro.graph``),
2. partition it across GPUs (``repro.graph.partition``),
3. wrap the algorithm as an Atos application (``repro.apps``),
4. execute it on a simulated machine (``repro.runtime``),
5. validate and inspect what happened.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import daisy
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.apps import AtosBFS, reference_bfs
from repro.runtime import AtosConfig, AtosExecutor


def main() -> None:
    # 1. A small scale-free graph (2^12 vertices, ~8 edges/vertex).
    graph = rmat(scale=12, edge_factor=8, seed=42)
    source = largest_component_vertex(graph)
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    # 2. Metis-like partitioning over 4 GPUs.
    partition = bfs_grow_partition(graph, 4, seed=0)
    print(f"partition sizes: {[len(p) for p in partition.part_vertices]}")

    # 3+4. Asynchronous push BFS on the paper's "Daisy" DGX station.
    app = AtosBFS(graph, partition, source)
    executor = AtosExecutor(daisy(4), app, AtosConfig())
    makespan_us, counters = executor.run()

    # 5. Validate against a serial reference and report.
    depth = app.result()
    assert np.array_equal(depth, reference_bfs(graph, source))
    reached = int((depth < np.iinfo(np.int32).max).sum())
    print(f"simulated runtime: {makespan_us / 1000:.3f} ms")
    print(f"vertices reached:  {reached}")
    print(f"max depth:         {depth[depth < np.iinfo(np.int32).max].max()}")
    print(f"vertices visited:  {int(counters['vertices_visited'])} "
          f"(redundancy factor "
          f"{counters['vertices_visited'] / reached:.3f})")
    print(f"remote updates:    {int(counters['remote_updates'])}")
    print(f"fabric messages:   {int(counters['fabric_messages'])}")
    print("OK: simulated BFS matches the serial reference")


if __name__ == "__main__":
    main()
