#!/usr/bin/env python
"""Shortest paths with the distributed priority queue (delta-stepping).

The paper's priority queue gives vertices with lower depth higher
processing priority; for *weighted* shortest paths the same structure
becomes distributed delta-stepping — each discrete kernel launch
settles one distance band.  This example routes across a weighted
road-network mesh with a FIFO queue and with the priority queue and
shows the work collapse, validating both against scipy's Dijkstra.

Run:  python examples/sssp_delta_stepping.py
"""

import numpy as np

from repro.config import daisy
from repro.gpu.kernel import KernelStrategy
from repro.graph import bfs_grow_partition, geometric_weights, grid_mesh
from repro.apps import AtosSSSP, reference_sssp
from repro.runtime import AtosConfig, AtosExecutor


def run(weighted, partition, source, config, label):
    app = AtosSSSP(weighted, partition, source)
    makespan, counters = AtosExecutor(daisy(4), app, config).run()
    dist = app.result()
    ref = reference_sssp(weighted, source)
    finite = np.isfinite(ref)
    assert np.array_equal(np.isfinite(dist), finite)
    assert np.allclose(dist[finite], ref[finite])
    relaxations = int(counters["vertices_relaxed"])
    print(f"{label:<22} {makespan / 1000:>9.3f} ms "
          f"{relaxations:>9} relaxations")
    return relaxations


def main() -> None:
    # A 60x60 road mesh with euclidean-ish edge costs.
    graph = grid_mesh(60, 60, seed=11)
    weighted = geometric_weights(graph, width=60, seed=11)
    partition = bfs_grow_partition(graph, 4, seed=0)
    source = 0
    print(f"weighted mesh: {graph.n_vertices} vertices, "
          f"{graph.n_edges} edges\n")
    print(f"{'configuration':<22} {'time':>12} {'work':>21}")

    fifo = run(
        weighted, partition, source,
        AtosConfig(fetch_size=1),
        "FIFO queue",
    )
    prio = run(
        weighted, partition, source,
        AtosConfig(
            kernel=KernelStrategy.DISCRETE,
            priority=True,
            threshold_delta=2.0,
            fetch_size=1,
        ),
        "priority queue (d=2)",
    )

    print(f"\nwork reduction from the priority queue: {fifo / prio:.1f}x")
    assert prio < fifo
    ideal = graph.n_vertices
    print(f"priority-queue relaxations vs ideal (|V|): "
          f"{prio / ideal:.2f}x")
    print("OK: delta-stepping pruned the Bellman-Ford re-relaxation storm")


if __name__ == "__main__":
    main()
