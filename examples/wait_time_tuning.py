#!/usr/bin/env python
"""Tune WAIT_TIME with `repro.tune` instead of hand-sweeping.

`examples/aggregator_tuning.py` sweeps aggregation knobs by hand; this
example does the same exploration through the design-space subsystem:
declare a typed space, pick a searcher, and let the journaled
evaluation engine (pool + persistent run cache) do the bookkeeping.

Run:  PYTHONPATH=src python examples/wait_time_tuning.py
"""

import tempfile

from repro.tune import CategoricalDim, Space, run_study


def main() -> None:
    # One dimension: WAIT_TIME over the Fig-4 levels, on a cheap cell.
    space = Space(
        dims=(
            CategoricalDim(
                "wait_time", choices=(1, 2, 4, 8, 16, 32, 64), ordered=True
            ),
        ),
        base={
            # An IB-connected cell: inter-node latency makes WAIT_TIME
            # genuinely matter (NVLink-only cells barely notice it).
            "app": "bfs",
            "dataset": "road-usa",
            "machine": "summit-ib",
            "n_gpus": 4,
        },
    )

    with tempfile.TemporaryDirectory() as tmp:
        journal = f"{tmp}/study.ndjson"
        # Exhaustive sweep first: the ground truth.
        sweep = run_study(
            space, searcher="grid", budget=7, objective="makespan",
            jobs=1, journal_path=journal,
        )
        # Evolutionary search over the same space, same journal: its
        # revisits of swept points are free (journal replays), so the
        # larger nominal budget costs almost no fresh simulations.
        evo = run_study(
            space, searcher="evolutionary", budget=12,
            objective="makespan", jobs=1, journal_path=journal,
            searcher_kwargs={"mu": 2, "lam": 3},
        )

    best = sweep["best"]
    print("swept objectives:")
    for trial in sweep["trials"]:
        marker = " <-- best" if trial["point"] == best["point"] else ""
        print(f"  wait_time={trial['point']['wait_time']:3d}  "
              f"{trial['objective']:.4f} ms{marker}")
    print(f"grid best: wait_time={best['point']['wait_time']} "
          f"-> {best['objective']:.4f} ms")
    print(f"evolutionary best: "
          f"wait_time={evo['best']['point']['wait_time']} "
          f"-> {evo['best']['objective']:.4f} ms "
          f"({evo['accounting']['simulations']} fresh simulations)")

    # Self-validate: the searcher converged onto the sweep's plateau.
    assert evo["best"]["objective"] <= best["objective"] * 1.10, (
        evo["best"], best,
    )
    print("OK: evolutionary search landed on the swept optimum's plateau")


if __name__ == "__main__":
    main()
